//! A deterministic bytecode interpreter for the initialization and
//! invocation phases (Table 1, rows 3–4).
//!
//! The interpreter executes only code that has passed (eager or lazy)
//! verification, so it is defensive rather than paranoid: anything
//! inconsistent that slipped through policy-lenient verification surfaces as
//! a runtime rejection, never a Rust panic.

use std::collections::BTreeMap;
use std::sync::Arc;

use classfuzz_classfile::{Constant, FieldType, MethodAccess, Opcode};

use crate::cov::Cov;
use crate::library::Behavior;
use crate::outcome::JvmErrorKind;
use crate::prepared::{prepare_method, PCatch, PInsn, PreparedCode};
use crate::spec::VmSpec;
use crate::verifier;
use crate::world::{UserClass, World};
use crate::{probe, probe_branch};

/// A runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum RtValue {
    /// `int` and sub-word types.
    Int(i32),
    /// `long`.
    Long(i64),
    /// `float`.
    Float(f32),
    /// `double`.
    Double(f64),
    /// Reference; `None` is `null`.
    Ref(Option<usize>),
}

impl RtValue {
    fn default_of(ft: &FieldType) -> RtValue {
        match ft {
            FieldType::Long => RtValue::Long(0),
            FieldType::Float => RtValue::Float(0.0),
            FieldType::Double => RtValue::Double(0.0),
            FieldType::Object(_) | FieldType::Array(_) => RtValue::Ref(None),
            _ => RtValue::Int(0),
        }
    }

    fn width(&self) -> usize {
        match self {
            RtValue::Long(_) | RtValue::Double(_) => 2,
            _ => 1,
        }
    }
}

/// A heap object.
#[derive(Debug, Clone)]
pub enum Obj {
    /// An instance with per-field storage.
    Instance {
        /// Class binary name.
        class: String,
        /// Field values keyed by `(name, descriptor)`.
        fields: BTreeMap<(String, String), RtValue>,
        /// Message slot for Throwable-like objects.
        message: Option<String>,
    },
    /// An interned string.
    Str(String),
    /// A string builder.
    Builder(String),
    /// An array.
    Array {
        /// Element descriptor text.
        elem: String,
        /// Element storage.
        data: Vec<RtValue>,
    },
    /// The shared `System.out` print stream.
    PrintStream,
}

/// A thrown Java exception in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Thrown {
    /// Exception class binary name.
    pub class: String,
    /// Optional message.
    pub message: Option<String>,
}

/// Why execution stopped abnormally.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// A Java exception escaped the call being executed.
    Uncaught(Thrown),
    /// A linkage error surfaced during execution (lazy verification,
    /// missing classes, missing members).
    Linkage {
        /// The error classification.
        kind: JvmErrorKind,
        /// Diagnostic text.
        message: String,
    },
    /// The deterministic step budget ran out.
    BudgetExceeded,
}

/// The machine: heap, statics, captured stdout.
pub struct Machine<'a> {
    world: &'a World,
    spec: &'a VmSpec,
    /// Heap storage; indices are [`RtValue::Ref`] payloads.
    pub heap: Vec<Obj>,
    /// Static fields keyed by `(class, field, descriptor)`.
    pub statics: BTreeMap<(String, String, String), RtValue>,
    /// Captured `System.out` lines.
    pub stdout: Vec<String>,
    steps: u64,
    /// Per-machine string interner backing the integer-keyed caches.
    names: BTreeMap<String, u32>,
    /// Methods verified so far (for lazy-verification VMs), by interned
    /// `(class, name, descriptor)`.
    verified: std::collections::BTreeSet<(u32, u32, u32)>,
    /// Successful `(start, name, descriptor)` method resolutions, by
    /// interned key. Entries are inserted only after `ensure_verified`
    /// succeeds, so a hit safely skips the superclass walk and the
    /// verification check both. Resolution errors are never cached: they
    /// are terminal for the run anyway, and their messages depend on the
    /// symbolic class, which is not part of the key.
    dispatch_cache: BTreeMap<(u32, u32, u32), Resolved>,
    /// Cold mode: build [`PreparedCode`] freshly per call and bypass the
    /// dispatch cache — the pre-cache interpreter, kept constructible as
    /// the `interp` bench scenario's baseline.
    cold: bool,
}

/// A cached successful method resolution.
#[derive(Clone)]
enum Resolved {
    /// A user-class method: the owning class and its method index.
    User {
        /// Shared handle to the resolved class.
        class: Arc<UserClass>,
        /// Index into `class.cf.methods`.
        pos: usize,
    },
    /// A library method's behavior.
    Lib(Behavior),
}

impl<'a> Machine<'a> {
    /// Creates a machine over `world`.
    pub fn new(world: &'a World, spec: &'a VmSpec) -> Machine<'a> {
        Machine::with_mode(world, spec, false)
    }

    /// A machine that re-prepares every method per call and resolves every
    /// invoke through the full superclass walk — the pre-cache
    /// interpreter, kept constructible (mirroring
    /// [`Jvm::uncached`](crate::Jvm::uncached)) as the baseline the
    /// `interp` bench scenario and the Criterion `interp/execute-cold`
    /// pair measure against.
    pub fn uncached(world: &'a World, spec: &'a VmSpec) -> Machine<'a> {
        Machine::with_mode(world, spec, true)
    }

    fn with_mode(world: &'a World, spec: &'a VmSpec, cold: bool) -> Machine<'a> {
        let mut m = Machine {
            world,
            spec,
            heap: vec![Obj::PrintStream],
            statics: BTreeMap::new(),
            stdout: Vec::new(),
            steps: 0,
            names: BTreeMap::new(),
            verified: std::collections::BTreeSet::new(),
            dispatch_cache: BTreeMap::new(),
            cold,
        };
        m.statics.insert(
            (
                "java/lang/System".into(),
                "out".into(),
                "Ljava/io/PrintStream;".into(),
            ),
            RtValue::Ref(Some(0)),
        );
        m.statics.insert(
            (
                "java/lang/System".into(),
                "err".into(),
                "Ljava/io/PrintStream;".into(),
            ),
            RtValue::Ref(Some(0)),
        );
        m
    }

    /// Fuel consumed so far: one unit per dispatched instruction,
    /// machine-global across `<clinit>`, `main`, and every nested invoke.
    /// After a [`ExecError::BudgetExceeded`] this is exactly
    /// `step_budget + 1` — the charge that tripped the limit — on every
    /// profile, which is what makes `Timeout` verdicts replay-stable.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    fn alloc(&mut self, obj: Obj) -> usize {
        self.heap.push(obj);
        self.heap.len() - 1
    }

    /// Interns `s` into the per-machine name table. Allocation-free once a
    /// name has been seen — lookups borrow `s`, only a first sighting
    /// copies it.
    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.names.get(s) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.insert(s.to_string(), id);
        id
    }

    /// The integer dispatch-cache key of this invoke — available only when
    /// every component is already interned, i.e. an identical resolution
    /// has been walked before. `None` (first sightings, array receivers)
    /// falls back to the slow path.
    fn cached_key(
        &self,
        class: &str,
        name: &str,
        desc: &str,
        receiver: &Option<RtValue>,
    ) -> Option<(u32, u32, u32)> {
        let start: &str = match receiver {
            Some(RtValue::Ref(Some(id))) if name != "<init>" => match &self.heap[*id] {
                Obj::Instance { class, .. } => class,
                Obj::Str(_) => "java/lang/String",
                Obj::Builder(_) => "java/lang/StringBuilder",
                Obj::PrintStream => "java/io/PrintStream",
                // Array dynamic class names are formatted on demand; rare
                // enough to always take the slow path.
                Obj::Array { .. } => return None,
            },
            _ => class,
        };
        Some((
            *self.names.get(start)?,
            *self.names.get(name)?,
            *self.names.get(desc)?,
        ))
    }

    fn intern_str(&mut self, s: &str) -> RtValue {
        RtValue::Ref(Some(self.alloc(Obj::Str(s.to_string()))))
    }

    fn throw(&self, class: &str, message: impl Into<String>) -> ExecError {
        ExecError::Uncaught(Thrown {
            class: class.into(),
            message: Some(message.into()),
        })
    }

    /// Prepares static fields of `class` (zero values, then
    /// `ConstantValue`s) — the preparation step of linking.
    pub fn prepare_statics(&mut self, class: &UserClass) {
        for (i, field) in class.fields.iter().enumerate() {
            if !field
                .access
                .contains(classfuzz_classfile::FieldAccess::STATIC)
            {
                continue;
            }
            let Some(ty) = &field.ty else { continue };
            let key = (
                class.name.clone(),
                field.name.clone(),
                field.desc_text.clone(),
            );
            let mut value = RtValue::default_of(ty);
            // ConstantValue initialization.
            for attr in &class.cf.fields[i].attributes {
                if let classfuzz_classfile::Attribute::ConstantValue(cpi) = attr {
                    value = match class.cf.constant_pool.entry(*cpi) {
                        Some(Constant::Integer(v)) => RtValue::Int(*v),
                        Some(Constant::Long(v)) => RtValue::Long(*v),
                        Some(Constant::Float(v)) => RtValue::Float(*v),
                        Some(Constant::Double(v)) => RtValue::Double(*v),
                        Some(Constant::String(s)) => match class.cf.constant_pool.utf8_text(*s) {
                            Some(text) => {
                                let text = text.to_string();
                                self.intern_str(&text)
                            }
                            None => RtValue::Ref(None),
                        },
                        _ => value,
                    };
                }
            }
            self.statics.insert(key, value);
        }
    }

    /// Invokes a static method of a user class by name/descriptor.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] for uncaught exceptions, linkage failures
    /// surfaced during execution, or budget exhaustion.
    pub fn call_static(
        &mut self,
        class: &UserClass,
        name: &str,
        desc: &str,
        args: Vec<RtValue>,
        cov: &mut Cov,
    ) -> Result<Option<RtValue>, ExecError> {
        probe!(cov);
        let m = class
            .find_method(name, desc)
            .ok_or_else(|| ExecError::Linkage {
                kind: JvmErrorKind::NoSuchMethodError,
                message: format!("{}.{name}{desc}", class.name),
            })?
            .clone();
        self.ensure_verified(class, &m, cov)?;
        self.execute(class, m.index, args, cov, 0)
    }

    /// Lazy verification (J9): verify a method the first time it is about
    /// to run.
    fn ensure_verified(
        &mut self,
        class: &UserClass,
        m: &crate::world::MethodSummary,
        cov: &mut Cov,
    ) -> Result<(), ExecError> {
        if !self.spec.lazy_method_verification {
            return Ok(()); // already verified eagerly at link time
        }
        // Interned key: the steady-state re-check is three map lookups and
        // zero allocations, not a fresh 3-String tuple per invoke.
        let key = (
            self.intern(&class.name),
            self.intern(&m.name),
            self.intern(&m.desc_text),
        );
        if self.verified.contains(&key) {
            return Ok(());
        }
        probe!(cov);
        let verified = if self.cold {
            verifier::verify_method_cold(self.world, class, m, self.spec, cov)
        } else {
            verifier::verify_method(self.world, class, m, self.spec, cov)
        };
        match verified {
            Ok(()) => {
                self.verified.insert(key);
                Ok(())
            }
            Err(outcome) => {
                let (kind, message) = match outcome.error() {
                    Some(e) => (e.kind, e.message.clone()),
                    None => (JvmErrorKind::VerifyError, "verification failed".into()),
                };
                Err(ExecError::Linkage { kind, message })
            }
        }
    }

    #[allow(clippy::too_many_lines)]
    fn execute(
        &mut self,
        class: &UserClass,
        method_index: usize,
        args: Vec<RtValue>,
        cov: &mut Cov,
        depth: usize,
    ) -> Result<Option<RtValue>, ExecError> {
        probe!(cov);
        // The limit is conservative: interpreter frames are large, and the
        // VM must raise Java's StackOverflowError long before it risks the
        // host thread's stack (test threads default to 2 MiB).
        if probe_branch!(cov, depth > 24) {
            return Err(self.throw("java/lang/StackOverflowError", "recursion too deep"));
        }
        // Prepared mode serves the class's shared table: the first
        // execution of a `(class, method)` builds the entry, every later
        // call — any profile, any nesting depth, any exec-diff rerun over
        // the same preparse handle — is a lookup. Cold mode rebuilds per
        // call, exactly what every call paid before the cache.
        let code = if self.cold {
            prepare_method(class, method_index).map(Arc::new)
        } else {
            class.prepared.get_or_prepare(class, method_index)
        };
        let Some(code) = code else {
            return Err(ExecError::Linkage {
                kind: JvmErrorKind::AbstractMethodError,
                message: format!("{} has no code", class.name),
            });
        };

        // Locals.
        let mut locals: Vec<RtValue> = vec![RtValue::Int(0); code.max_locals as usize + 4];
        let mut slot = 0usize;
        for a in args {
            let w = a.width();
            if slot < locals.len() {
                locals[slot] = a;
            }
            slot += w;
        }
        let mut stack: Vec<RtValue> = Vec::with_capacity(code.max_stack as usize + 4);

        let mut idx = 0usize;
        loop {
            // Fuel invariant: this loop head is the ONLY place fuel is
            // charged, and every control transfer — backward branches,
            // switch targets, exception-handler dispatch (`rt_throw!` and
            // the Uncaught arms below), and returns from nested `execute`
            // calls (which run this same loop on the shared machine-global
            // counter) — flows back through it before the next instruction
            // dispatches. One charge per dispatched instruction therefore
            // covers every backward branch and every invoke; no code path
            // can execute without paying. `tests/interp_conformance.rs`
            // pins this with a `goto`-only loop.
            self.steps += 1;
            if probe_branch!(cov, self.steps > self.spec.step_budget) {
                return Err(ExecError::BudgetExceeded);
            }
            if idx >= code.insns.len() {
                return Err(ExecError::Linkage {
                    kind: JvmErrorKind::InternalError,
                    message: "execution ran off the code array".into(),
                });
            }
            let cur_pc = code.pcs[idx];

            macro_rules! rt_throw {
                ($class:expr, $msg:expr) => {{
                    let thrown = Thrown {
                        class: $class.to_string(),
                        message: Some($msg.to_string()),
                    };
                    match self.find_handler(&code, cur_pc, &thrown) {
                        Some(handler_idx) => {
                            let exc_class = thrown.class.clone();
                            let obj = self.alloc(Obj::Instance {
                                class: exc_class,
                                fields: BTreeMap::new(),
                                message: thrown.message.clone(),
                            });
                            stack.clear();
                            stack.push(RtValue::Ref(Some(obj)));
                            idx = handler_idx;
                            continue;
                        }
                        None => return Err(ExecError::Uncaught(thrown)),
                    }
                }};
            }

            macro_rules! pop {
                () => {
                    match stack.pop() {
                        Some(v) => v,
                        None => {
                            return Err(ExecError::Linkage {
                                kind: JvmErrorKind::InternalError,
                                message: "runtime stack underflow".into(),
                            })
                        }
                    }
                };
            }
            macro_rules! pop_int {
                () => {
                    match pop!() {
                        RtValue::Int(v) => v,
                        other => coerce_int(other),
                    }
                };
            }

            let mut next = idx + 1;
            // No per-step clone: the match borrows the prepared
            // instruction in place (the `Arc<PreparedCode>` is a local,
            // so the borrow never conflicts with `&mut self` calls).
            match &code.insns[idx] {
                PInsn::Simple(op) => {
                    use Opcode::*;
                    match op {
                        Nop => {}
                        AconstNull => stack.push(RtValue::Ref(None)),
                        IconstM1 | Iconst0 | Iconst1 | Iconst2 | Iconst3 | Iconst4 | Iconst5 => {
                            stack.push(RtValue::Int(op.byte() as i32 - Iconst0.byte() as i32))
                        }
                        Lconst0 | Lconst1 => {
                            stack.push(RtValue::Long((op.byte() - Lconst0.byte()) as i64))
                        }
                        Fconst0 | Fconst1 | Fconst2 => {
                            stack.push(RtValue::Float((op.byte() - Fconst0.byte()) as f32))
                        }
                        Dconst0 | Dconst1 => {
                            stack.push(RtValue::Double((op.byte() - Dconst0.byte()) as f64))
                        }
                        Iload0 | Iload1 | Iload2 | Iload3 => {
                            stack.push(locals[(op.byte() - Iload0.byte()) as usize].clone())
                        }
                        Lload0 | Lload1 | Lload2 | Lload3 => {
                            stack.push(locals[(op.byte() - Lload0.byte()) as usize].clone())
                        }
                        Fload0 | Fload1 | Fload2 | Fload3 => {
                            stack.push(locals[(op.byte() - Fload0.byte()) as usize].clone())
                        }
                        Dload0 | Dload1 | Dload2 | Dload3 => {
                            stack.push(locals[(op.byte() - Dload0.byte()) as usize].clone())
                        }
                        Aload0 | Aload1 | Aload2 | Aload3 => {
                            stack.push(locals[(op.byte() - Aload0.byte()) as usize].clone())
                        }
                        Istore0 | Istore1 | Istore2 | Istore3 => {
                            locals[(op.byte() - Istore0.byte()) as usize] = pop!()
                        }
                        Lstore0 | Lstore1 | Lstore2 | Lstore3 => {
                            locals[(op.byte() - Lstore0.byte()) as usize] = pop!()
                        }
                        Fstore0 | Fstore1 | Fstore2 | Fstore3 => {
                            locals[(op.byte() - Fstore0.byte()) as usize] = pop!()
                        }
                        Dstore0 | Dstore1 | Dstore2 | Dstore3 => {
                            locals[(op.byte() - Dstore0.byte()) as usize] = pop!()
                        }
                        Astore0 | Astore1 | Astore2 | Astore3 => {
                            locals[(op.byte() - Astore0.byte()) as usize] = pop!()
                        }
                        Pop => {
                            pop!();
                        }
                        Pop2 => {
                            let v = pop!();
                            if v.width() == 1 {
                                pop!();
                            }
                        }
                        Dup => {
                            let v = pop!();
                            stack.push(v.clone());
                            stack.push(v);
                        }
                        DupX1 => {
                            let a = pop!();
                            let b = pop!();
                            stack.push(a.clone());
                            stack.push(b);
                            stack.push(a);
                        }
                        Dup2 => {
                            let a = pop!();
                            if a.width() == 2 {
                                stack.push(a.clone());
                                stack.push(a);
                            } else {
                                let b = pop!();
                                stack.push(b.clone());
                                stack.push(a.clone());
                                stack.push(b);
                                stack.push(a);
                            }
                        }
                        Swap => {
                            let a = pop!();
                            let b = pop!();
                            stack.push(a);
                            stack.push(b);
                        }
                        DupX2 => {
                            // Insert a category-1 value beneath two slots.
                            let a = pop!();
                            let b = pop!();
                            if b.width() == 2 {
                                stack.push(a.clone());
                                stack.push(b);
                                stack.push(a);
                            } else {
                                let c = pop!();
                                stack.push(a.clone());
                                stack.push(c);
                                stack.push(b);
                                stack.push(a);
                            }
                        }
                        Dup2X1 => {
                            // Duplicate two slots beneath one category-1 slot.
                            let a = pop!();
                            if a.width() == 2 {
                                let b = pop!();
                                stack.push(a.clone());
                                stack.push(b);
                                stack.push(a);
                            } else {
                                let b = pop!();
                                let c = pop!();
                                stack.push(b.clone());
                                stack.push(a.clone());
                                stack.push(c);
                                stack.push(b);
                                stack.push(a);
                            }
                        }
                        Dup2X2 => {
                            // Duplicate the top two slots beneath the next
                            // two slots, in all four JVMS §6.5 forms.
                            let mut top = vec![pop!()];
                            if top[0].width() == 1 {
                                top.insert(0, pop!());
                            }
                            let mut under = vec![pop!()];
                            if under[0].width() == 1 {
                                under.insert(0, pop!());
                            }
                            for v in &top {
                                stack.push(v.clone());
                            }
                            for v in &under {
                                stack.push(v.clone());
                            }
                            for v in &top {
                                stack.push(v.clone());
                            }
                        }
                        Iadd | Isub | Imul | Iand | Ior | Ixor | Ishl | Ishr | Iushr => {
                            let b = pop_int!();
                            let a = pop_int!();
                            stack.push(RtValue::Int(int_arith(*op, a, b)));
                        }
                        Idiv | Irem => {
                            let b = pop_int!();
                            let a = pop_int!();
                            if probe_branch!(cov, b == 0) {
                                rt_throw!("java/lang/ArithmeticException", "/ by zero");
                            }
                            stack.push(RtValue::Int(int_arith(*op, a, b)));
                        }
                        Ladd | Lsub | Lmul | Land | Lor | Lxor | Lshl | Lshr | Lushr => {
                            let b = coerce_long(pop!());
                            let a = coerce_long(pop!());
                            stack.push(RtValue::Long(long_arith(*op, a, b)));
                        }
                        Ldiv | Lrem => {
                            let b = coerce_long(pop!());
                            let a = coerce_long(pop!());
                            if probe_branch!(cov, b == 0) {
                                rt_throw!("java/lang/ArithmeticException", "/ by zero");
                            }
                            stack.push(RtValue::Long(long_arith(*op, a, b)));
                        }
                        Fadd | Fsub | Fmul | Fdiv | Frem => {
                            let b = coerce_float(pop!());
                            let a = coerce_float(pop!());
                            stack.push(RtValue::Float(float_arith(*op, a, b)));
                        }
                        Dadd | Dsub | Dmul | Ddiv | Drem => {
                            let b = coerce_double(pop!());
                            let a = coerce_double(pop!());
                            stack.push(RtValue::Double(double_arith(*op, a, b)));
                        }
                        Ineg => {
                            let a = pop_int!();
                            stack.push(RtValue::Int(a.wrapping_neg()));
                        }
                        Lneg => {
                            let a = coerce_long(pop!());
                            stack.push(RtValue::Long(a.wrapping_neg()));
                        }
                        Fneg => {
                            let a = coerce_float(pop!());
                            stack.push(RtValue::Float(-a));
                        }
                        Dneg => {
                            let a = coerce_double(pop!());
                            stack.push(RtValue::Double(-a));
                        }
                        I2l => {
                            let a = pop_int!();
                            stack.push(RtValue::Long(a as i64));
                        }
                        I2f => {
                            let a = pop_int!();
                            stack.push(RtValue::Float(a as f32));
                        }
                        I2d => {
                            let a = pop_int!();
                            stack.push(RtValue::Double(a as f64));
                        }
                        L2i => {
                            let a = coerce_long(pop!());
                            stack.push(RtValue::Int(a as i32));
                        }
                        L2f => {
                            let a = coerce_long(pop!());
                            stack.push(RtValue::Float(a as f32));
                        }
                        L2d => {
                            let a = coerce_long(pop!());
                            stack.push(RtValue::Double(a as f64));
                        }
                        F2i => {
                            let a = coerce_float(pop!());
                            stack.push(RtValue::Int(a as i32));
                        }
                        F2l => {
                            let a = coerce_float(pop!());
                            stack.push(RtValue::Long(a as i64));
                        }
                        F2d => {
                            let a = coerce_float(pop!());
                            stack.push(RtValue::Double(a as f64));
                        }
                        D2i => {
                            let a = coerce_double(pop!());
                            stack.push(RtValue::Int(a as i32));
                        }
                        D2l => {
                            let a = coerce_double(pop!());
                            stack.push(RtValue::Long(a as i64));
                        }
                        D2f => {
                            let a = coerce_double(pop!());
                            stack.push(RtValue::Float(a as f32));
                        }
                        I2b => {
                            let a = pop_int!();
                            stack.push(RtValue::Int(a as i8 as i32));
                        }
                        I2c => {
                            let a = pop_int!();
                            stack.push(RtValue::Int(a as u16 as i32));
                        }
                        I2s => {
                            let a = pop_int!();
                            stack.push(RtValue::Int(a as i16 as i32));
                        }
                        Lcmp => {
                            let b = coerce_long(pop!());
                            let a = coerce_long(pop!());
                            stack.push(RtValue::Int(match a.cmp(&b) {
                                std::cmp::Ordering::Less => -1,
                                std::cmp::Ordering::Equal => 0,
                                std::cmp::Ordering::Greater => 1,
                            }));
                        }
                        Fcmpl | Fcmpg => {
                            let b = coerce_float(pop!());
                            let a = coerce_float(pop!());
                            let nan = if *op == Fcmpg { 1 } else { -1 };
                            stack.push(RtValue::Int(cmp_float(a as f64, b as f64, nan)));
                        }
                        Dcmpl | Dcmpg => {
                            let b = coerce_double(pop!());
                            let a = coerce_double(pop!());
                            let nan = if *op == Dcmpg { 1 } else { -1 };
                            stack.push(RtValue::Int(cmp_float(a, b, nan)));
                        }
                        Ireturn | Lreturn | Freturn | Dreturn | Areturn => {
                            return Ok(Some(pop!()));
                        }
                        Return => return Ok(None),
                        Arraylength => {
                            let r = pop!();
                            match self.deref_array(&r) {
                                Some(len) => stack.push(RtValue::Int(len as i32)),
                                None => rt_throw!(
                                    "java/lang/NullPointerException",
                                    "arraylength on null"
                                ),
                            }
                        }
                        Iaload | Laload | Faload | Daload | Aaload | Baload | Caload | Saload => {
                            let i = pop_int!();
                            let arr = pop!();
                            match self.array_get(&arr, i) {
                                Ok(v) => stack.push(v),
                                Err(t) => rt_throw!(t.class, t.message.unwrap_or_default()),
                            }
                        }
                        Iastore | Lastore | Fastore | Dastore | Aastore | Bastore | Castore
                        | Sastore => {
                            let v = pop!();
                            let i = pop_int!();
                            let arr = pop!();
                            if let Err(t) = self.array_set(&arr, i, v) {
                                rt_throw!(t.class, t.message.unwrap_or_default());
                            }
                        }
                        Athrow => {
                            let r = pop!();
                            let thrown = self.thrown_from(&r);
                            match self.find_handler(&code, cur_pc, &thrown) {
                                Some(h) => {
                                    stack.clear();
                                    stack.push(r);
                                    idx = h;
                                    continue;
                                }
                                None => return Err(ExecError::Uncaught(thrown)),
                            }
                        }
                        Monitorenter | Monitorexit => {
                            let r = pop!();
                            if matches!(r, RtValue::Ref(None)) {
                                rt_throw!("java/lang/NullPointerException", "monitor on null");
                            }
                        }
                        other => {
                            return Err(ExecError::Linkage {
                                kind: JvmErrorKind::InternalError,
                                message: format!("interpreter cannot execute {other}"),
                            })
                        }
                    }
                }
                PInsn::PushI(v) => stack.push(RtValue::Int(*v)),
                PInsn::PushL(v) => stack.push(RtValue::Long(*v)),
                PInsn::PushF(v) => stack.push(RtValue::Float(*v)),
                PInsn::PushD(v) => stack.push(RtValue::Double(*v)),
                PInsn::PushStr(s) => {
                    // Re-interned per execution, exactly as `ldc` of a
                    // String always did (each run gets a fresh heap id).
                    let v = self.intern_str(s);
                    stack.push(v);
                }
                PInsn::LdcUnusable => {
                    return Err(ExecError::Linkage {
                        kind: JvmErrorKind::ClassFormatError,
                        message: "ldc of unusable constant".into(),
                    })
                }
                PInsn::Local(op, slot) => {
                    let slot = *slot as usize;
                    if slot >= locals.len() {
                        return Err(ExecError::Linkage {
                            kind: JvmErrorKind::InternalError,
                            message: "local slot out of range at runtime".into(),
                        });
                    }
                    match op {
                        Opcode::Iload
                        | Opcode::Lload
                        | Opcode::Fload
                        | Opcode::Dload
                        | Opcode::Aload => stack.push(locals[slot].clone()),
                        Opcode::Istore
                        | Opcode::Lstore
                        | Opcode::Fstore
                        | Opcode::Dstore
                        | Opcode::Astore => locals[slot] = pop!(),
                        other => {
                            return Err(ExecError::Linkage {
                                kind: JvmErrorKind::InternalError,
                                message: format!("unexpected local opcode {other}"),
                            })
                        }
                    }
                }
                PInsn::Iinc { index, delta } => {
                    let slot = *index as usize;
                    if let Some(RtValue::Int(v)) = locals.get(slot) {
                        locals[slot] = RtValue::Int(v.wrapping_add(*delta as i32));
                    }
                }
                PInsn::Branch(op, target) => {
                    use Opcode::*;
                    let jump = match op {
                        Goto | GotoW => true,
                        Ifeq => pop_int!() == 0,
                        Ifne => pop_int!() != 0,
                        Iflt => pop_int!() < 0,
                        Ifge => pop_int!() >= 0,
                        Ifgt => pop_int!() > 0,
                        Ifle => pop_int!() <= 0,
                        Ifnull => matches!(pop!(), RtValue::Ref(None)),
                        Ifnonnull => !matches!(pop!(), RtValue::Ref(None)),
                        IfIcmpeq | IfIcmpne | IfIcmplt | IfIcmpge | IfIcmpgt | IfIcmple => {
                            let b = pop_int!();
                            let a = pop_int!();
                            match op {
                                IfIcmpeq => a == b,
                                IfIcmpne => a != b,
                                IfIcmplt => a < b,
                                IfIcmpge => a >= b,
                                IfIcmpgt => a > b,
                                _ => a <= b,
                            }
                        }
                        IfAcmpeq | IfAcmpne => {
                            let b = pop!();
                            let a = pop!();
                            let eq = a == b;
                            if *op == IfAcmpeq {
                                eq
                            } else {
                                !eq
                            }
                        }
                        _ => {
                            return Err(ExecError::Linkage {
                                kind: JvmErrorKind::InternalError,
                                message: format!("unexpected branch opcode {op}"),
                            })
                        }
                    };
                    probe_branch!(cov, jump);
                    if jump {
                        // The unresolvable-target sentinel errors only
                        // when the branch is actually taken, as before.
                        if *target == u32::MAX {
                            return Err(ExecError::Linkage {
                                kind: JvmErrorKind::VerifyError,
                                message: "branch to a non-instruction at runtime".into(),
                            });
                        }
                        next = *target as usize;
                    }
                }
                PInsn::FieldUnresolved => {
                    return Err(ExecError::Linkage {
                        kind: JvmErrorKind::NoSuchFieldError,
                        message: "unresolvable field reference".into(),
                    });
                }
                PInsn::Field(op, mref) => match op {
                    Opcode::Getstatic => {
                        match self.resolve_static(&mref.class, &mref.name, &mref.desc, cov) {
                            Ok(v) => stack.push(v),
                            Err(e) => return Err(e),
                        }
                    }
                    Opcode::Putstatic => {
                        let v = pop!();
                        if !self.world.exists(&mref.class) {
                            return Err(ExecError::Linkage {
                                kind: JvmErrorKind::NoClassDefFoundError,
                                message: mref.class.clone(),
                            });
                        }
                        self.statics.insert(
                            (mref.class.clone(), mref.name.clone(), mref.desc.clone()),
                            v,
                        );
                    }
                    Opcode::Getfield => {
                        let r = pop!();
                        match &r {
                            RtValue::Ref(Some(id)) => {
                                let v = self.instance_field(*id, &mref.name, &mref.desc);
                                stack.push(v);
                            }
                            _ => rt_throw!(
                                "java/lang/NullPointerException",
                                format!("getfield {} on null", mref.name)
                            ),
                        }
                    }
                    Opcode::Putfield => {
                        let v = pop!();
                        let r = pop!();
                        match r {
                            RtValue::Ref(Some(id)) => {
                                if let Obj::Instance { fields, .. } = &mut self.heap[id] {
                                    fields.insert((mref.name.clone(), mref.desc.clone()), v);
                                }
                            }
                            _ => rt_throw!(
                                "java/lang/NullPointerException",
                                format!("putfield {} on null", mref.name)
                            ),
                        }
                    }
                    _ => unreachable!("Field covers the four field opcodes"),
                },
                PInsn::InvokeUnresolved => {
                    return Err(ExecError::Linkage {
                        kind: JvmErrorKind::NoSuchMethodError,
                        message: "unresolvable method reference".into(),
                    });
                }
                PInsn::InvokeBadDesc(mdesc) => {
                    return Err(ExecError::Linkage {
                        kind: JvmErrorKind::NoSuchMethodError,
                        message: format!("bad descriptor {mdesc}"),
                    });
                }
                PInsn::Invoke {
                    is_static,
                    nargs,
                    mref,
                } => {
                    let mut call_args = Vec::new();
                    for _ in 0..*nargs {
                        call_args.push(pop!());
                    }
                    call_args.reverse();
                    let receiver = if *is_static { None } else { Some(pop!()) };
                    if let Some(RtValue::Ref(None)) = receiver {
                        rt_throw!(
                            "java/lang/NullPointerException",
                            format!("invoke {} on null", mref.name)
                        );
                    }
                    match self.dispatch(
                        &mref.class,
                        &mref.name,
                        &mref.desc,
                        receiver,
                        call_args,
                        cov,
                        depth,
                    ) {
                        Ok(Some(v)) => stack.push(v),
                        Ok(None) => {}
                        Err(ExecError::Uncaught(t)) => match self.find_handler(&code, cur_pc, &t) {
                            Some(h) => {
                                let obj = self.alloc(Obj::Instance {
                                    class: t.class.clone(),
                                    fields: BTreeMap::new(),
                                    message: t.message.clone(),
                                });
                                stack.clear();
                                stack.push(RtValue::Ref(Some(obj)));
                                idx = h;
                                continue;
                            }
                            None => return Err(ExecError::Uncaught(t)),
                        },
                        Err(e) => return Err(e),
                    }
                }
                PInsn::InvokeDynamic => {
                    return Err(ExecError::Linkage {
                        kind: JvmErrorKind::UnsatisfiedLinkError,
                        message: "invokedynamic unsupported".into(),
                    })
                }
                PInsn::NewUnresolved => {
                    return Err(ExecError::Linkage {
                        kind: JvmErrorKind::NoClassDefFoundError,
                        message: "new of unresolvable class".into(),
                    });
                }
                PInsn::New(name) => {
                    if !self.world.exists(name) {
                        return Err(ExecError::Linkage {
                            kind: JvmErrorKind::NoClassDefFoundError,
                            message: name.to_string(),
                        });
                    }
                    if self.spec.reject_internal_access && self.world.is_internal(name) {
                        return Err(ExecError::Linkage {
                            kind: JvmErrorKind::IllegalAccessError,
                            message: format!("tried to access internal class {name}"),
                        });
                    }
                    if self.world.is_interface(name) == Some(true) {
                        return Err(ExecError::Linkage {
                            kind: JvmErrorKind::InstantiationError,
                            message: name.to_string(),
                        });
                    }
                    let id = self.alloc(Obj::Instance {
                        class: name.to_string(),
                        fields: BTreeMap::new(),
                        message: None,
                    });
                    stack.push(RtValue::Ref(Some(id)));
                }
                PInsn::NewArray(atype) => {
                    let len = pop_int!();
                    if probe_branch!(cov, len < 0) {
                        rt_throw!("java/lang/NegativeArraySizeException", len.to_string());
                    }
                    let elem = match atype {
                        4 => "Z",
                        5 => "C",
                        6 => "F",
                        7 => "D",
                        8 => "B",
                        9 => "S",
                        10 => "I",
                        _ => "J",
                    };
                    let fill = match atype {
                        6 => RtValue::Float(0.0),
                        7 => RtValue::Double(0.0),
                        11 => RtValue::Long(0),
                        _ => RtValue::Int(0),
                    };
                    let id = self.alloc(Obj::Array {
                        elem: elem.to_string(),
                        data: vec![fill; (len as usize).min(1 << 20)],
                    });
                    stack.push(RtValue::Ref(Some(id)));
                }
                PInsn::ANewArray(elem) => {
                    let len = pop_int!();
                    if probe_branch!(cov, len < 0) {
                        rt_throw!("java/lang/NegativeArraySizeException", len.to_string());
                    }
                    let id = self.alloc(Obj::Array {
                        elem: elem.to_string(),
                        data: vec![RtValue::Ref(None); (len as usize).min(1 << 20)],
                    });
                    stack.push(RtValue::Ref(Some(id)));
                }
                PInsn::CheckCast(name) => {
                    let r = pop!();
                    if let RtValue::Ref(Some(id)) = &r {
                        let actual = self.class_of(*id);
                        let compatible = actual
                            .as_deref()
                            .map(|a| {
                                !self.world.exists(a)
                                    || !self.world.exists(name)
                                    || self.world.is_subtype(a, name)
                            })
                            .unwrap_or(true);
                        if probe_branch!(cov, !compatible) {
                            rt_throw!(
                                "java/lang/ClassCastException",
                                format!("{} cannot be cast to {name}", actual.unwrap_or_default())
                            );
                        }
                    }
                    stack.push(r);
                }
                PInsn::InstanceOf(name) => {
                    let r = pop!();
                    let result = match &r {
                        RtValue::Ref(Some(id)) => {
                            let actual = self.class_of(*id);
                            actual
                                .map(|a| self.world.is_subtype(&a, name))
                                .unwrap_or(false)
                        }
                        _ => false,
                    };
                    stack.push(RtValue::Int(result as i32));
                }
                PInsn::MultiANewArray(dims) => {
                    let mut len = 0;
                    for _ in 0..*dims {
                        len = pop_int!();
                    }
                    let id = self.alloc(Obj::Array {
                        elem: "Ljava/lang/Object;".into(),
                        data: vec![RtValue::Ref(None); (len.max(0) as usize).min(1 << 16)],
                    });
                    stack.push(RtValue::Ref(Some(id)));
                }
                PInsn::TableSwitch {
                    low,
                    high,
                    targets,
                    default,
                } => {
                    let key = pop_int!();
                    let target = if (*low..=*high).contains(&key) {
                        targets[(key - low) as usize]
                    } else {
                        *default
                    };
                    next = target as usize;
                }
                PInsn::LookupSwitch { pairs, default } => {
                    let key = pop_int!();
                    let target = pairs
                        .iter()
                        .find(|(k, _)| *k == key)
                        .map(|(_, t)| *t)
                        .unwrap_or(*default);
                    next = target as usize;
                }
            }
            idx = next;
        }
    }

    /// Walks the prepared handler table for the first entry covering `pc`
    /// that catches `thrown`. Mirrors the pre-prepared behaviour exactly:
    /// the walk commits to the *first* catching entry even when its
    /// handler offset did not land on an instruction boundary (in which
    /// case the exception propagates as uncaught, as it always did).
    fn find_handler(&self, code: &PreparedCode, pc: u32, thrown: &Thrown) -> Option<usize> {
        for h in &code.handlers {
            if (h.start_pc..h.end_pc).contains(&pc) {
                let catches = match &h.catch {
                    PCatch::All => true,
                    PCatch::Class(name) => self.world.is_subtype(&thrown.class, name),
                    PCatch::Unresolvable => false,
                };
                if catches {
                    return h.handler.map(|i| i as usize);
                }
            }
        }
        None
    }

    fn thrown_from(&self, r: &RtValue) -> Thrown {
        match r {
            RtValue::Ref(Some(id)) => match &self.heap[*id] {
                Obj::Instance { class, message, .. } => Thrown {
                    class: class.clone(),
                    message: message.clone(),
                },
                _ => Thrown {
                    class: "java/lang/Throwable".into(),
                    message: None,
                },
            },
            _ => Thrown {
                class: "java/lang/NullPointerException".into(),
                message: Some("throw null".into()),
            },
        }
    }

    fn deref_array(&self, r: &RtValue) -> Option<usize> {
        match r {
            RtValue::Ref(Some(id)) => match &self.heap[*id] {
                Obj::Array { data, .. } => Some(data.len()),
                _ => Some(0),
            },
            _ => None,
        }
    }

    fn array_get(&self, arr: &RtValue, i: i32) -> Result<RtValue, Thrown> {
        match arr {
            RtValue::Ref(Some(id)) => match &self.heap[*id] {
                Obj::Array { data, .. } => {
                    if i < 0 || i as usize >= data.len() {
                        Err(Thrown {
                            class: "java/lang/ArrayIndexOutOfBoundsException".into(),
                            message: Some(i.to_string()),
                        })
                    } else {
                        Ok(data[i as usize].clone())
                    }
                }
                _ => Ok(RtValue::Int(0)),
            },
            _ => Err(Thrown {
                class: "java/lang/NullPointerException".into(),
                message: Some("array access on null".into()),
            }),
        }
    }

    fn array_set(&mut self, arr: &RtValue, i: i32, v: RtValue) -> Result<(), Thrown> {
        match arr {
            RtValue::Ref(Some(id)) => {
                if let Obj::Array { data, .. } = &mut self.heap[*id] {
                    if i < 0 || i as usize >= data.len() {
                        return Err(Thrown {
                            class: "java/lang/ArrayIndexOutOfBoundsException".into(),
                            message: Some(i.to_string()),
                        });
                    }
                    data[i as usize] = v;
                }
                Ok(())
            }
            _ => Err(Thrown {
                class: "java/lang/NullPointerException".into(),
                message: Some("array store on null".into()),
            }),
        }
    }

    fn class_of(&self, id: usize) -> Option<String> {
        match &self.heap[id] {
            Obj::Instance { class, .. } => Some(class.clone()),
            Obj::Str(_) => Some("java/lang/String".into()),
            Obj::Builder(_) => Some("java/lang/StringBuilder".into()),
            Obj::Array { elem, .. } => Some(format!("[{elem}")),
            Obj::PrintStream => Some("java/io/PrintStream".into()),
        }
    }

    fn instance_field(&self, id: usize, name: &str, desc: &str) -> RtValue {
        if let Obj::Instance { fields, .. } = &self.heap[id] {
            if let Some(v) = fields.get(&(name.to_string(), desc.to_string())) {
                return v.clone();
            }
        }
        FieldType::parse(desc)
            .map(|t| RtValue::default_of(&t))
            .unwrap_or(RtValue::Int(0))
    }

    fn resolve_static(
        &mut self,
        class: &str,
        name: &str,
        desc: &str,
        cov: &mut Cov,
    ) -> Result<RtValue, ExecError> {
        probe!(cov);
        // Walk the superclass chain like real field resolution.
        let mut cur = class.to_string();
        for _ in 0..32 {
            let key = (cur.clone(), name.to_string(), desc.to_string());
            if let Some(v) = self.statics.get(&key) {
                return Ok(v.clone());
            }
            if let Some(lib) = self.world.lib(&cur) {
                if lib
                    .static_fields
                    .iter()
                    .any(|f| f.name == name && f.desc == desc)
                {
                    // Unmodeled library static: default value.
                    let v = FieldType::parse(desc)
                        .map(|t| RtValue::default_of(&t))
                        .unwrap_or(RtValue::Int(0));
                    return Ok(v);
                }
            }
            match self.world.super_of(&cur) {
                Some(s) => cur = s,
                None => break,
            }
        }
        if !self.world.exists(class) {
            return Err(ExecError::Linkage {
                kind: JvmErrorKind::NoClassDefFoundError,
                message: class.to_string(),
            });
        }
        if self.spec.reject_internal_access && self.world.is_internal(class) {
            return Err(ExecError::Linkage {
                kind: JvmErrorKind::IllegalAccessError,
                message: format!("tried to access internal class {class}"),
            });
        }
        Err(ExecError::Linkage {
            kind: JvmErrorKind::NoSuchFieldError,
            message: format!("{class}.{name}"),
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn dispatch(
        &mut self,
        class: &str,
        name: &str,
        desc: &str,
        receiver: Option<RtValue>,
        args: Vec<RtValue>,
        cov: &mut Cov,
        depth: usize,
    ) -> Result<Option<RtValue>, ExecError> {
        probe!(cov);
        // Fast path: a previous invoke already walked the hierarchy for
        // this exact (dynamic start class, name, desc) triple and verified
        // the target, so replaying the cached resolution is trace-safe —
        // traces are site *sets* per run, and the cold resolution of the
        // same key already fired every probe this shortcut skips.
        if !self.cold {
            if let Some(key) = self.cached_key(class, name, desc, &receiver) {
                if let Some(resolved) = self.dispatch_cache.get(&key) {
                    match resolved {
                        Resolved::User { class, pos } => {
                            let class = Arc::clone(class);
                            let pos = *pos;
                            let mut full_args = Vec::with_capacity(args.len() + 1);
                            if let Some(r) = receiver {
                                full_args.push(r);
                            }
                            full_args.extend(args);
                            return self.execute(&class, pos, full_args, cov, depth + 1);
                        }
                        Resolved::Lib(behavior) => {
                            let behavior = *behavior;
                            return self.builtin(behavior, receiver, args, cov);
                        }
                    }
                }
            }
        }
        // Copy out the shared world reference so hierarchy lookups below
        // don't hold a borrow of `self` across the `&mut self` calls.
        let world = self.world;
        // Virtual dispatch: start from the receiver's dynamic class when
        // there is one, else the symbolic class.
        let start = match &receiver {
            Some(RtValue::Ref(Some(id))) if name != "<init>" => {
                self.class_of(*id).unwrap_or_else(|| class.to_string())
            }
            _ => class.to_string(),
        };
        let cache_key = (self.intern(&start), self.intern(name), self.intern(desc));
        let mut cur = start.clone();
        let mut chain_ended = false;
        for _ in 0..32 {
            if let Some(user) = world.user_class_arc(&cur) {
                if let Some(m) = user.find_method(name, desc) {
                    let m = m.clone();
                    if probe_branch!(cov, m.access.contains(MethodAccess::ABSTRACT)) {
                        return Err(ExecError::Linkage {
                            kind: JvmErrorKind::AbstractMethodError,
                            message: format!("{cur}.{name}{desc}"),
                        });
                    }
                    if probe_branch!(cov, m.access.contains(MethodAccess::NATIVE)) {
                        return Err(ExecError::Linkage {
                            kind: JvmErrorKind::UnsatisfiedLinkError,
                            message: format!("{cur}.{name}{desc}"),
                        });
                    }
                    // Refcount bump, not a deep classfile clone.
                    let user = Arc::clone(user);
                    self.ensure_verified(&user, &m, cov)?;
                    // Cache only after verification succeeded, so a hit can
                    // safely skip the walk *and* the verify re-check.
                    if !self.cold {
                        self.dispatch_cache.insert(
                            cache_key,
                            Resolved::User {
                                class: Arc::clone(&user),
                                pos: m.index,
                            },
                        );
                    }
                    let mut full_args = Vec::with_capacity(args.len() + 1);
                    if let Some(r) = receiver {
                        full_args.push(r);
                    }
                    full_args.extend(args);
                    return self.execute(&user, m.index, full_args, cov, depth + 1);
                }
            }
            if let Some(lib) = world.lib(&cur) {
                if let Some(m) = lib.find_method(name, desc) {
                    let behavior = m.behavior;
                    if !self.cold {
                        self.dispatch_cache
                            .insert(cache_key, Resolved::Lib(behavior));
                    }
                    return self.builtin(behavior, receiver, args, cov);
                }
            }
            match world.super_of(&cur) {
                Some(s) => cur = s,
                None => {
                    chain_ended = true;
                    break;
                }
            }
        }
        if !chain_ended {
            // The walk ran out of hops before reaching the chain's root:
            // surface the bounded resolution depth as its own stable
            // linkage error instead of the generic not-found fallthrough.
            return Err(ExecError::Linkage {
                kind: JvmErrorKind::ResolutionDepthExceeded,
                message: format!("resolving {class}.{name}{desc}: superclass chain deeper than 32"),
            });
        }
        if !self.world.exists(&start) && !self.world.exists(class) {
            return Err(ExecError::Linkage {
                kind: JvmErrorKind::NoClassDefFoundError,
                message: class.to_string(),
            });
        }
        if self.spec.reject_internal_access
            && (self.world.is_internal(class) || self.world.is_internal(&start))
        {
            return Err(ExecError::Linkage {
                kind: JvmErrorKind::IllegalAccessError,
                message: format!("tried to access internal class {class}"),
            });
        }
        Err(ExecError::Linkage {
            kind: JvmErrorKind::NoSuchMethodError,
            message: format!("{class}.{name}{desc}"),
        })
    }

    fn builtin(
        &mut self,
        behavior: Behavior,
        receiver: Option<RtValue>,
        args: Vec<RtValue>,
        cov: &mut Cov,
    ) -> Result<Option<RtValue>, ExecError> {
        probe!(cov);
        Ok(match behavior {
            Behavior::Default | Behavior::InitNop => None,
            Behavior::PrintlnStr => {
                let text = args.first().map(|a| self.render(a)).unwrap_or_default();
                self.stdout.push(text);
                None
            }
            Behavior::PrintlnValue => {
                let text = args.first().map(|a| self.render(a)).unwrap_or_default();
                self.stdout.push(text);
                None
            }
            Behavior::PrintlnEmpty => {
                self.stdout.push(String::new());
                None
            }
            Behavior::ThrowableInitMsg => {
                if let (Some(RtValue::Ref(Some(id))), Some(msg)) = (receiver.clone(), args.first())
                {
                    let text = self.render(msg);
                    if let Obj::Instance { message, .. } = &mut self.heap[id] {
                        *message = Some(text);
                    }
                }
                None
            }
            Behavior::ThrowableGetMessage => {
                let msg = match &receiver {
                    Some(RtValue::Ref(Some(id))) => match &self.heap[*id] {
                        Obj::Instance { message, .. } => message.clone(),
                        _ => None,
                    },
                    _ => None,
                };
                Some(match msg {
                    Some(m) => self.intern_str(&m),
                    None => RtValue::Ref(None),
                })
            }
            Behavior::StringLength => {
                let len = match &receiver {
                    Some(RtValue::Ref(Some(id))) => match &self.heap[*id] {
                        Obj::Str(s) => s.chars().count() as i32,
                        _ => 0,
                    },
                    _ => 0,
                };
                Some(RtValue::Int(len))
            }
            Behavior::StringConcat => {
                let a = receiver
                    .as_ref()
                    .map(|r| self.render(r))
                    .unwrap_or_default();
                let b = args.first().map(|r| self.render(r)).unwrap_or_default();
                Some(self.intern_str(&format!("{a}{b}")))
            }
            Behavior::StringEquals => {
                let a = receiver
                    .as_ref()
                    .map(|r| self.render(r))
                    .unwrap_or_default();
                let b = args.first().map(|r| self.render(r)).unwrap_or_default();
                Some(RtValue::Int((a == b) as i32))
            }
            Behavior::StringHashCode => {
                let a = receiver
                    .as_ref()
                    .map(|r| self.render(r))
                    .unwrap_or_default();
                let mut h: i32 = 0;
                for c in a.chars() {
                    h = h.wrapping_mul(31).wrapping_add(c as i32);
                }
                Some(RtValue::Int(h))
            }
            Behavior::SbAppend => {
                if let (Some(RtValue::Ref(Some(id))), Some(arg)) = (receiver.clone(), args.first())
                {
                    let rendered = self.render(arg);
                    // Appending to a plain Instance upgrades it to a builder.
                    match &mut self.heap[id] {
                        Obj::Builder(s) => s.push_str(&rendered),
                        obj @ Obj::Instance { .. } => *obj = Obj::Builder(rendered),
                        _ => {}
                    }
                }
                Some(receiver.unwrap_or(RtValue::Ref(None)))
            }
            Behavior::SbToString => {
                let text = match &receiver {
                    Some(RtValue::Ref(Some(id))) => match &self.heap[*id] {
                        Obj::Builder(s) => s.clone(),
                        _ => String::new(),
                    },
                    _ => String::new(),
                };
                Some(self.intern_str(&text))
            }
            Behavior::MathAbs => Some(RtValue::Int(
                args.first()
                    .map(|a| coerce_int(a.clone()).wrapping_abs())
                    .unwrap_or(0),
            )),
            Behavior::MathMax => {
                let a = args.first().map(|a| coerce_int(a.clone())).unwrap_or(0);
                let b = args.get(1).map(|a| coerce_int(a.clone())).unwrap_or(0);
                Some(RtValue::Int(a.max(b)))
            }
            Behavior::MathMin => {
                let a = args.first().map(|a| coerce_int(a.clone())).unwrap_or(0);
                let b = args.get(1).map(|a| coerce_int(a.clone())).unwrap_or(0);
                Some(RtValue::Int(a.min(b)))
            }
            Behavior::ParseInt => {
                let text = args.first().map(|a| self.render(a)).unwrap_or_default();
                match text.trim().parse::<i32>() {
                    Ok(v) => Some(RtValue::Int(v)),
                    Err(_) => {
                        return Err(self.throw(
                            "java/lang/IllegalArgumentException",
                            format!("For input string: {text:?}"),
                        ))
                    }
                }
            }
            Behavior::ObjHashCode => Some(RtValue::Int(match &receiver {
                Some(RtValue::Ref(Some(id))) => *id as i32,
                _ => 0,
            })),
            Behavior::ObjEquals => {
                let eq = receiver.as_ref() == args.first();
                Some(RtValue::Int(eq as i32))
            }
            Behavior::ObjToString => {
                let text = receiver
                    .as_ref()
                    .map(|r| self.render(r))
                    .unwrap_or_default();
                Some(self.intern_str(&text))
            }
        })
    }

    /// Renders a value for printing.
    pub fn render(&self, v: &RtValue) -> String {
        match v {
            RtValue::Int(x) => x.to_string(),
            RtValue::Long(x) => x.to_string(),
            RtValue::Float(x) => format!("{x:?}"),
            RtValue::Double(x) => format!("{x:?}"),
            RtValue::Ref(None) => "null".to_string(),
            RtValue::Ref(Some(id)) => match &self.heap[*id] {
                Obj::Str(s) => s.clone(),
                Obj::Builder(s) => s.clone(),
                Obj::Instance { class, .. } => format!("{}@{id}", class.replace('/', ".")),
                Obj::Array { .. } => format!("[Array@{id}"),
                Obj::PrintStream => "java.io.PrintStream".to_string(),
            },
        }
    }
}

fn coerce_int(v: RtValue) -> i32 {
    match v {
        RtValue::Int(x) => x,
        RtValue::Long(x) => x as i32,
        RtValue::Float(x) => x as i32,
        RtValue::Double(x) => x as i32,
        RtValue::Ref(_) => 0,
    }
}

fn coerce_long(v: RtValue) -> i64 {
    match v {
        RtValue::Int(x) => x as i64,
        RtValue::Long(x) => x,
        RtValue::Float(x) => x as i64,
        RtValue::Double(x) => x as i64,
        RtValue::Ref(_) => 0,
    }
}

fn coerce_float(v: RtValue) -> f32 {
    match v {
        RtValue::Int(x) => x as f32,
        RtValue::Long(x) => x as f32,
        RtValue::Float(x) => x,
        RtValue::Double(x) => x as f32,
        RtValue::Ref(_) => 0.0,
    }
}

fn coerce_double(v: RtValue) -> f64 {
    match v {
        RtValue::Int(x) => x as f64,
        RtValue::Long(x) => x as f64,
        RtValue::Float(x) => x as f64,
        RtValue::Double(x) => x,
        RtValue::Ref(_) => 0.0,
    }
}

fn int_arith(op: Opcode, a: i32, b: i32) -> i32 {
    use Opcode::*;
    match op {
        Iadd => a.wrapping_add(b),
        Isub => a.wrapping_sub(b),
        Imul => a.wrapping_mul(b),
        Idiv => a.wrapping_div(b),
        Irem => a.wrapping_rem(b),
        Iand => a & b,
        Ior => a | b,
        Ixor => a ^ b,
        Ishl => a.wrapping_shl(b as u32 & 31),
        Ishr => a.wrapping_shr(b as u32 & 31),
        Iushr => ((a as u32).wrapping_shr(b as u32 & 31)) as i32,
        _ => 0,
    }
}

fn long_arith(op: Opcode, a: i64, b: i64) -> i64 {
    use Opcode::*;
    match op {
        Ladd => a.wrapping_add(b),
        Lsub => a.wrapping_sub(b),
        Lmul => a.wrapping_mul(b),
        Ldiv => a.wrapping_div(b),
        Lrem => a.wrapping_rem(b),
        Land => a & b,
        Lor => a | b,
        Lxor => a ^ b,
        Lshl => a.wrapping_shl(b as u32 & 63),
        Lshr => a.wrapping_shr(b as u32 & 63),
        Lushr => ((a as u64).wrapping_shr(b as u32 & 63)) as i64,
        _ => 0,
    }
}

fn float_arith(op: Opcode, a: f32, b: f32) -> f32 {
    use Opcode::*;
    match op {
        Fadd => a + b,
        Fsub => a - b,
        Fmul => a * b,
        Fdiv => a / b,
        Frem => a % b,
        _ => 0.0,
    }
}

fn double_arith(op: Opcode, a: f64, b: f64) -> f64 {
    use Opcode::*;
    match op {
        Dadd => a + b,
        Dsub => a - b,
        Dmul => a * b,
        Ddiv => a / b,
        Drem => a % b,
        _ => 0.0,
    }
}

fn cmp_float(a: f64, b: f64, nan: i32) -> i32 {
    if a.is_nan() || b.is_nan() {
        nan
    } else if a < b {
        -1
    } else if a > b {
        1
    } else {
        0
    }
}
