//! Analyze-once verification: per-method [`MethodAnalysis`] with the
//! descriptor parsed, instructions flattened into a resolution-free
//! [`AInsn`] view (branch and handler targets as instruction indices,
//! constant-pool references resolved to verification facts), built once
//! per `(class, method)` and shared through the [`AnalysisTable`] riding
//! on every [`UserClass`](crate::world::UserClass).
//!
//! This is the verifier's version of the prepare-once move the
//! interpreter made with [`PreparedCode`](crate::prepared::PreparedCode):
//! the old dataflow loop re-laid instruction offsets, re-parsed field and
//! method descriptors, and re-resolved constant-pool entries per profile
//! — all of it profile-invariant. The analysis does that work exactly
//! once; the five profiles' verifiers then iterate `AInsn`s by reference
//! and apply only their `VmSpec`-specific policy judgments.
//!
//! Two invariants make the cache safe to share across the five profiles
//! and the async engine — the same contract `prepare_method` honors:
//!
//! * analysis is a **pure function of the classfile** — it never consults
//!   the [`World`](crate::world::World) or the
//!   [`VmSpec`](crate::spec::VmSpec), so the same `MethodAnalysis` is
//!   correct under every profile's library generation and policy knobs.
//!   Anything world- or spec-dependent (class existence, subtype tests,
//!   merge policy, param-cast strictness) stays in the dataflow loop;
//! * analysis contains **no coverage probes** — every probe the cold
//!   path fired per verification still fires per verification on the
//!   analyzed path, so fixed-seed traces are bit-identical whether a
//!   method is analyzed fresh or served from the table.
//!
//! Error semantics are deferred, not decided: an unresolvable branch
//! target, member reference, or descriptor becomes a dedicated fact
//! variant (or a `u32::MAX` sentinel) that raises the exact same
//! `VerifyError` as the cold path — and only if the dataflow actually
//! reaches the offending instruction (a branch to a non-instruction is
//! an error only when the branch is checked).

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

use classfuzz_classfile::{ConstIndex, Constant, FieldType, Instruction, MethodDescriptor, Opcode};

use crate::world::UserClass;

/// A verification type (one stack/local slot).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VType {
    /// Unusable/unknown.
    Top,
    /// `int` and its sub-word kin.
    Int,
    /// `float`.
    Float,
    /// `long` (first slot; followed by [`VType::Hi`]).
    Long,
    /// `double` (first slot; followed by [`VType::Hi`]).
    Double,
    /// Second slot of a wide value.
    Hi,
    /// The `null` reference.
    Null,
    /// A reference of the given class (or array descriptor) name. Interned
    /// per analysis: cloning a slot bumps a refcount instead of copying
    /// the name.
    Ref(Arc<str>),
    /// A `new`-allocated object not yet initialized (keyed by allocation pc).
    Uninit(u32),
    /// `this` in an `<init>` before the superclass constructor call.
    UninitThis,
}

impl VType {
    pub(crate) fn is_reference(&self) -> bool {
        matches!(
            self,
            VType::Null | VType::Ref(_) | VType::Uninit(_) | VType::UninitThis
        )
    }

    pub(crate) fn is_uninitialized(&self) -> bool {
        matches!(self, VType::Uninit(_) | VType::UninitThis)
    }

    pub(crate) fn width(&self) -> usize {
        match self {
            VType::Long | VType::Double => 2,
            _ => 1,
        }
    }
}

/// The verification type of a parsed field type (runtime variant: names
/// are freshly allocated, not interned).
pub(crate) fn vtype_of(ft: &FieldType) -> VType {
    match ft {
        FieldType::Boolean
        | FieldType::Byte
        | FieldType::Char
        | FieldType::Short
        | FieldType::Int => VType::Int,
        FieldType::Float => VType::Float,
        FieldType::Long => VType::Long,
        FieldType::Double => VType::Double,
        FieldType::Object(n) => VType::Ref(n.as_str().into()),
        FieldType::Array(_) => VType::Ref(ft.to_descriptor().into()),
    }
}

/// Per-analysis name interner: repeated class names and descriptors in
/// one method body share a single `Arc<str>`.
#[derive(Default)]
struct Interner(BTreeMap<String, Arc<str>>);

impl Interner {
    fn get(&mut self, s: &str) -> Arc<str> {
        if let Some(a) = self.0.get(s) {
            return a.clone();
        }
        let a: Arc<str> = Arc::from(s);
        self.0.insert(s.to_string(), a.clone());
        a
    }
}

/// [`vtype_of`] with names routed through the interner.
fn vtype_of_in(ft: &FieldType, it: &mut Interner) -> VType {
    match ft {
        FieldType::Object(n) => VType::Ref(it.get(n)),
        FieldType::Array(_) => VType::Ref(it.get(&ft.to_descriptor())),
        _ => vtype_of(ft),
    }
}

/// A branch target pre-resolved to an instruction index. `idx ==
/// u32::MAX` marks a target that is not an instruction boundary — a
/// `VerifyError` (naming the original byte offset `pc`) only when the
/// dataflow follows the edge.
#[derive(Debug, Clone, Copy)]
pub struct ATarget {
    /// Target instruction index, or `u32::MAX` when unresolvable.
    pub idx: u32,
    /// The original byte-offset target (for the error message).
    pub pc: u32,
}

/// An analyzed exception-table entry. The protected range stays in byte
/// offsets (matched against each covered instruction's original pc); the
/// handler target is pre-resolved to an instruction index.
#[derive(Debug)]
pub struct AHandler {
    /// Start of the protected range (byte offset, inclusive).
    pub start_pc: u32,
    /// End of the protected range (byte offset, exclusive).
    pub end_pc: u32,
    /// Handler entry point as an instruction index; `None` when
    /// `handler_pc` lands between instructions (a `VerifyError` for every
    /// instruction the range covers, exactly as on the cold path).
    pub handler: Option<u32>,
    /// The caught type pushed on the handler's stack: `java/lang/Throwable`
    /// for `catch_type == 0` or an unresolvable entry, matching the cold
    /// path's fallback.
    pub catch: Arc<str>,
}

/// The method's own signature, pre-lowered to verification types.
#[derive(Debug)]
pub struct ASig {
    /// Parameter types in declaration order.
    pub param_vts: Vec<VType>,
    /// Return type; `None` for `void`.
    pub ret_vt: Option<VType>,
}

/// What an `ldc`/`ldc_w` constant pushes.
#[derive(Debug)]
pub enum ALdc {
    /// An `Integer` entry.
    Int,
    /// A `Float` entry.
    Float,
    /// A `String` or `Class` entry: push the named reference type.
    Ref(Arc<str>),
    /// Anything else: `VerifyError` when the instruction is reached.
    Unusable,
}

/// What an `ldc2_w` constant pushes.
#[derive(Debug)]
pub enum ALdc2 {
    /// A `Long` entry.
    Long,
    /// A `Double` entry.
    Double,
    /// Anything else: `VerifyError` when the instruction is reached.
    Unusable,
}

/// A field reference pre-resolved to its verification fact.
#[derive(Debug)]
pub enum AField {
    /// The declared field type, pre-lowered.
    Ok(VType),
    /// The constant-pool entry is not a member reference: `VerifyError`
    /// naming the entry when the instruction is reached.
    Unresolved(ConstIndex),
    /// The field descriptor does not parse: `VerifyError` naming the
    /// descriptor when the instruction is reached.
    BadDesc(Box<str>),
}

/// A resolved call-site fact for `invoke*`.
#[derive(Debug)]
pub struct ACall {
    /// Referenced class binary name.
    pub class: Arc<str>,
    /// Whether the referenced method is `<init>`.
    pub is_init: bool,
    /// Declared parameter types, pre-lowered, in declaration order.
    pub param_vts: Vec<VType>,
    /// Declared return type; `None` for `void`.
    pub ret_vt: Option<VType>,
}

/// A method reference pre-resolved to its verification fact.
#[derive(Debug)]
pub enum AInvoke {
    /// The resolved call site.
    Ok(Box<ACall>),
    /// The constant-pool entry is not a member reference: `VerifyError`
    /// naming the entry when the instruction is reached.
    Unresolved(ConstIndex),
    /// The method descriptor does not parse: `VerifyError` naming the
    /// descriptor when the instruction is reached.
    BadDesc(Box<str>),
}

/// A class reference pre-resolved to a name (or, for `anewarray`, the
/// pre-rendered array descriptor).
#[derive(Debug)]
pub enum AClass {
    /// The resolved name.
    Ok(Arc<str>),
    /// The constant-pool entry is not a class: `VerifyError` naming the
    /// entry when the instruction is reached.
    Unresolved(ConstIndex),
}

/// The shape of a method invocation, fixed by its opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvokeShape {
    /// `invokevirtual`.
    Virtual,
    /// `invokespecial`.
    Special,
    /// `invokestatic` (no receiver).
    Static,
    /// `invokeinterface`.
    Interface,
}

/// One analyzed instruction: the verifier's transfer function reads these
/// by reference instead of cloning [`Instruction`]s and re-resolving the
/// constant pool per profile.
#[derive(Debug)]
pub enum AInsn {
    /// An operand-free opcode, transferred as before (opcode validity is
    /// still judged in the dataflow, where the error probes live).
    Simple(Opcode),
    /// `bipush` / `sipush`: push an int.
    PushInt,
    /// `ldc` / `ldc_w` with the constant kind pre-resolved.
    Ldc(ALdc),
    /// `ldc2_w` with the constant kind pre-resolved.
    Ldc2(ALdc2),
    /// Wide-format local load/store.
    Local(Opcode, u16),
    /// `iinc` (the delta is irrelevant to verification).
    Iinc(u16),
    /// A branch with its target pre-resolved.
    Branch(Opcode, ATarget),
    /// A field access with its declared type pre-resolved.
    Field(Opcode, AField),
    /// A method invocation: shape from the opcode (`Err` holds a bad
    /// invoke opcode, judged in the dataflow), call fact from the pool.
    Invoke {
        /// The invocation shape, or the offending opcode.
        shape: Result<InvokeShape, Opcode>,
        /// The pre-resolved call-site fact.
        call: AInvoke,
    },
    /// `invokedynamic`: unsupported, `VerifyError` when reached.
    InvokeDynamic,
    /// `new` with the class name pre-resolved (interface-ness is a world
    /// question and stays in the dataflow).
    New(AClass),
    /// `newarray` with the array descriptor pre-rendered (the descriptor
    /// is only read after the dataflow's type-code range check passes).
    NewArray {
        /// The primitive type tag, range-checked in the dataflow.
        atype: u8,
        /// Pre-rendered array descriptor for valid tags.
        desc: Arc<str>,
    },
    /// `anewarray`: `Ok` holds the pre-rendered array descriptor.
    ANewArray(AClass),
    /// `checkcast` with the target class pre-resolved.
    CheckCast(AClass),
    /// `instanceof` with the target class pre-resolved.
    InstanceOf(AClass),
    /// `multianewarray` with its dimension count and result descriptor.
    MultiANewArray {
        /// Dimension count, zero-checked in the dataflow.
        dims: u8,
        /// The pushed result type (`[Ljava/lang/Object;`).
        vt: Arc<str>,
    },
    /// `tableswitch` with all targets pre-resolved.
    TableSwitch {
        /// Default target.
        default: ATarget,
        /// Per-key targets in table order.
        targets: Vec<ATarget>,
    },
    /// `lookupswitch` with all targets pre-resolved.
    LookupSwitch {
        /// Default target.
        default: ATarget,
        /// Pair targets in declaration order (keys are irrelevant to
        /// verification).
        targets: Vec<ATarget>,
    },
}

/// Everything profile-invariant about verifying one method: the facts all
/// five profiles' dataflow runs consume by reference.
#[derive(Debug)]
pub struct MethodAnalysis {
    /// The declaring class's binary name, interned once.
    pub class_name: Arc<str>,
    /// Declared operand-stack limit.
    pub max_stack: u16,
    /// Declared local-variable count.
    pub max_locals: u16,
    /// The flattened instruction stream.
    pub insns: Vec<AInsn>,
    /// Original byte offset of each instruction (for exception-range
    /// matching and `new`'s allocation-pc key).
    pub pcs: Vec<u32>,
    /// Analyzed exception table, in declaration order.
    pub handlers: Vec<AHandler>,
    /// The method's own signature; `None` when the descriptor does not
    /// parse (a `VerifyError` before the dataflow starts).
    pub sig: Option<ASig>,
}

/// Analyzes method `method_index` of `class` for verification; `None`
/// when the method has no `Code` attribute (nothing to verify).
///
/// Pure function of the classfile: no world, no spec, no coverage probes.
pub fn analyze_method(class: &UserClass, method_index: usize) -> Option<MethodAnalysis> {
    let info = class.cf.methods.get(method_index)?;
    let code = info.code()?;
    let cp = &class.cf.constant_pool;
    let mut it = Interner::default();
    let class_name = it.get(&class.name);

    // The method's own descriptor, parsed from the same utf8 text the
    // class summary reads — so `sig` is `Some` exactly when
    // `MethodSummary::desc` is.
    let desc_text = cp.utf8_text(info.descriptor).unwrap_or("");
    let sig = MethodDescriptor::parse(desc_text).ok().map(|d| ASig {
        param_vts: d.params.iter().map(|p| vtype_of_in(p, &mut it)).collect(),
        ret_vt: d.ret.as_ref().map(|r| vtype_of_in(r, &mut it)),
    });

    // Instruction offsets for branch/switch/handler resolution — computed
    // once here instead of once per profile.
    let mut pcs = Vec::with_capacity(code.instructions.len());
    let mut pc_to_idx = BTreeMap::new();
    let mut pc = 0u32;
    for (i, insn) in code.instructions.iter().enumerate() {
        pcs.push(pc);
        pc_to_idx.insert(pc, i);
        pc += insn.encoded_len(pc);
    }
    let target = |t: u32| ATarget {
        idx: pc_to_idx.get(&t).map(|&i| i as u32).unwrap_or(u32::MAX),
        pc: t,
    };

    let mut insns = Vec::with_capacity(code.instructions.len());
    for insn in &code.instructions {
        insns.push(match insn {
            Instruction::Simple(op) => AInsn::Simple(*op),
            Instruction::Bipush(_) | Instruction::Sipush(_) => AInsn::PushInt,
            Instruction::Ldc(cpi) | Instruction::LdcW(cpi) => AInsn::Ldc(match cp.entry(*cpi) {
                Some(Constant::Integer(_)) => ALdc::Int,
                Some(Constant::Float(_)) => ALdc::Float,
                Some(Constant::String(_)) => ALdc::Ref(it.get("java/lang/String")),
                Some(Constant::Class(_)) => ALdc::Ref(it.get("java/lang/Class")),
                _ => ALdc::Unusable,
            }),
            Instruction::Ldc2W(cpi) => AInsn::Ldc2(match cp.entry(*cpi) {
                Some(Constant::Long(_)) => ALdc2::Long,
                Some(Constant::Double(_)) => ALdc2::Double,
                _ => ALdc2::Unusable,
            }),
            Instruction::Local(op, slot) => AInsn::Local(*op, *slot),
            Instruction::Iinc { index, .. } => AInsn::Iinc(*index),
            Instruction::Branch(op, t) => AInsn::Branch(*op, target(*t)),
            Instruction::Field(op, cpi) => AInsn::Field(
                *op,
                match cp.member_ref_parts(*cpi) {
                    Some((_, _, desc)) => match FieldType::parse(&desc) {
                        Ok(ft) => AField::Ok(vtype_of_in(&ft, &mut it)),
                        Err(_) => AField::BadDesc(desc.into()),
                    },
                    None => AField::Unresolved(*cpi),
                },
            ),
            Instruction::Invoke(op, cpi) => AInsn::Invoke {
                shape: match op {
                    Opcode::Invokevirtual => Ok(InvokeShape::Virtual),
                    Opcode::Invokespecial => Ok(InvokeShape::Special),
                    Opcode::Invokestatic => Ok(InvokeShape::Static),
                    other => Err(*other),
                },
                call: resolve_call(class, *cpi, &mut it),
            },
            Instruction::InvokeInterface { index, .. } => AInsn::Invoke {
                shape: Ok(InvokeShape::Interface),
                call: resolve_call(class, *index, &mut it),
            },
            Instruction::InvokeDynamic(_) => AInsn::InvokeDynamic,
            Instruction::New(cpi) => AInsn::New(resolve_class(class, *cpi, &mut it)),
            Instruction::NewArray(atype) => AInsn::NewArray {
                atype: *atype,
                desc: it.get(match atype {
                    4 => "[Z",
                    5 => "[C",
                    6 => "[F",
                    7 => "[D",
                    8 => "[B",
                    9 => "[S",
                    10 => "[I",
                    _ => "[J",
                }),
            },
            Instruction::ANewArray(cpi) => AInsn::ANewArray(match cp.class_name(*cpi) {
                Some(name) => {
                    let desc = if name.starts_with('[') {
                        format!("[{name}")
                    } else {
                        format!("[L{name};")
                    };
                    AClass::Ok(it.get(&desc))
                }
                None => AClass::Unresolved(*cpi),
            }),
            Instruction::CheckCast(cpi) => AInsn::CheckCast(resolve_class(class, *cpi, &mut it)),
            Instruction::InstanceOf(cpi) => AInsn::InstanceOf(resolve_class(class, *cpi, &mut it)),
            Instruction::MultiANewArray { dims, .. } => AInsn::MultiANewArray {
                dims: *dims,
                vt: it.get("[Ljava/lang/Object;"),
            },
            Instruction::TableSwitch(ts) => AInsn::TableSwitch {
                default: target(ts.default),
                targets: ts.targets.iter().map(|&t| target(t)).collect(),
            },
            Instruction::LookupSwitch(ls) => AInsn::LookupSwitch {
                default: target(ls.default),
                targets: ls.pairs.iter().map(|&(_, t)| target(t)).collect(),
            },
        });
    }

    let handlers = code
        .exception_table
        .iter()
        .map(|e| AHandler {
            start_pc: e.start_pc as u32,
            end_pc: e.end_pc as u32,
            handler: pc_to_idx.get(&(e.handler_pc as u32)).map(|&i| i as u32),
            catch: if e.catch_type.0 == 0 {
                it.get("java/lang/Throwable")
            } else {
                match cp.class_name(e.catch_type) {
                    Some(name) => it.get(&name),
                    None => it.get("java/lang/Throwable"),
                }
            },
        })
        .collect();

    Some(MethodAnalysis {
        class_name,
        max_stack: code.max_stack,
        max_locals: code.max_locals,
        insns,
        pcs,
        handlers,
        sig,
    })
}

fn resolve_call(class: &UserClass, cpi: ConstIndex, it: &mut Interner) -> AInvoke {
    let cp = &class.cf.constant_pool;
    let Some((cname, name, desc_text)) = cp.member_ref_parts(cpi) else {
        return AInvoke::Unresolved(cpi);
    };
    let Ok(desc) = MethodDescriptor::parse(&desc_text) else {
        return AInvoke::BadDesc(desc_text.into());
    };
    AInvoke::Ok(Box::new(ACall {
        class: it.get(&cname),
        is_init: name == "<init>",
        param_vts: desc.params.iter().map(|p| vtype_of_in(p, it)).collect(),
        ret_vt: desc.ret.as_ref().map(|r| vtype_of_in(r, it)),
    }))
}

fn resolve_class(class: &UserClass, cpi: ConstIndex, it: &mut Interner) -> AClass {
    match class.cf.constant_pool.class_name(cpi) {
        Some(n) => AClass::Ok(it.get(&n)),
        None => AClass::Unresolved(cpi),
    }
}

/// The per-class analysis table: one lazily-filled slot per classfile
/// method, shared by `Arc` so every clone of a `UserClass` (and every
/// world overlay holding the same preparse handle) sees the same slots.
/// `OnceLock` makes first-analysis race-free under the async engine;
/// content is a pure function of the classfile, so sharing across
/// profiles is sound.
#[derive(Debug, Clone)]
pub struct AnalysisTable {
    slots: Arc<Vec<OnceLock<Option<Arc<MethodAnalysis>>>>>,
}

impl AnalysisTable {
    /// A table with one empty slot per classfile method.
    pub fn for_methods(count: usize) -> AnalysisTable {
        AnalysisTable {
            slots: Arc::new((0..count).map(|_| OnceLock::new()).collect()),
        }
    }

    /// The analysis for `method_index`, building it on first use. `None`
    /// when the index is out of range or the method has no `Code`
    /// attribute.
    pub fn get_or_analyze(
        &self,
        class: &UserClass,
        method_index: usize,
    ) -> Option<Arc<MethodAnalysis>> {
        self.slots
            .get(method_index)?
            .get_or_init(|| analyze_method(class, method_index).map(Arc::new))
            .clone()
    }

    /// How many method slots the table has.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the table has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

impl fmt::Display for AnalysisTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let filled = self.slots.iter().filter(|s| s.get().is_some()).count();
        write!(f, "AnalysisTable({filled}/{} analyzed)", self.slots.len())
    }
}
