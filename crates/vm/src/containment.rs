//! Panic isolation for the differential harness.
//!
//! The paper treats VM *crashes* as first-class bugs (§3.3); our harness
//! must therefore survive — and record — panics inside its own 18k-LoC
//! parser/verifier/interpreter instead of tearing down a whole campaign.
//! [`run_contained`] runs a closure under [`std::panic::catch_unwind`] and
//! converts a panic into a deterministic textual description (message plus
//! source location), which callers turn into an
//! [`Outcome::Crashed`](crate::Outcome::Crashed) verdict.
//!
//! A process-global panic hook is installed once; while a contained region
//! is active on the current thread the hook records the panic instead of
//! spewing a backtrace to stderr, so worker-shard crashes stay silent. Code
//! outside contained regions keeps the default hook behaviour.

use std::cell::{Cell, RefCell};
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

thread_local! {
    /// Nesting depth of active contained regions on this thread.
    static CONTAIN_DEPTH: Cell<u32> = const { Cell::new(0) };
    /// The most recent suppressed panic's description (message + location).
    static LAST_PANIC: RefCell<Option<String>> = const { RefCell::new(None) };
}

static INSTALL_HOOK: Once = Once::new();

/// Installs the recording panic hook (once per process), chaining to the
/// previously installed hook for panics outside contained regions.
fn install_hook() {
    INSTALL_HOOK.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if CONTAIN_DEPTH.with(Cell::get) > 0 {
                let message = payload_message(info.payload());
                let described = match info.location() {
                    Some(loc) => {
                        format!("panicked at {}:{}: {message}", loc.file(), loc.line())
                    }
                    None => format!("panicked: {message}"),
                };
                LAST_PANIC.with(|p| *p.borrow_mut() = Some(described));
            } else {
                previous(info);
            }
        }));
    });
}

/// Extracts the human-readable message from a panic payload.
fn payload_message(payload: &dyn std::any::Any) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `f`, converting a panic into `Err(description)`.
///
/// The description is deterministic for a deterministic panic (fixed
/// message and source location), so a crash verdict derived from it is as
/// replayable as any other outcome. Nested contained regions are allowed;
/// each reports its own innermost panic.
///
/// The closure is wrapped in [`AssertUnwindSafe`]: callers pass borrows of
/// state (coverage accumulators, RNGs, half-mutated classes) that they
/// discard or treat as tainted-but-valid after an `Err`.
///
/// # Examples
///
/// ```
/// use classfuzz_vm::containment::run_contained;
///
/// assert_eq!(run_contained(|| 21 * 2), Ok(42));
/// let err = run_contained(|| -> u32 { panic!("boom") }).unwrap_err();
/// assert!(err.contains("boom"));
/// ```
pub fn run_contained<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    install_hook();
    CONTAIN_DEPTH.with(|d| d.set(d.get() + 1));
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    CONTAIN_DEPTH.with(|d| d.set(d.get() - 1));
    match result {
        Ok(value) => Ok(value),
        Err(payload) => {
            let recorded = LAST_PANIC.with(|p| p.borrow_mut().take());
            Err(recorded.unwrap_or_else(|| payload_message(payload.as_ref())))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ok_values_pass_through() {
        assert_eq!(run_contained(|| "fine"), Ok("fine"));
    }

    #[test]
    fn panics_become_descriptions_with_location() {
        let err = run_contained(|| panic!("injected failure")).unwrap_err();
        assert!(err.contains("injected failure"), "{err}");
        assert!(err.contains("containment.rs"), "location missing: {err}");
    }

    #[test]
    fn formatted_panic_messages_are_captured() {
        let n = 7;
        let err = run_contained(|| panic!("bad index {n}")).unwrap_err();
        assert!(err.contains("bad index 7"), "{err}");
    }

    #[test]
    fn nested_regions_report_innermost_panic() {
        let outer = run_contained(|| {
            let inner = run_contained(|| panic!("inner"));
            assert!(inner.unwrap_err().contains("inner"));
            // After the inner region the outer one still contains panics.
            panic!("outer")
        });
        assert!(outer.unwrap_err().contains("outer"));
    }

    #[test]
    fn descriptions_are_deterministic() {
        // Same panic site both times: the description (message *and*
        // file:line) must replay exactly, run to run.
        fn boom() -> ! {
            panic!("same message")
        }
        let a = run_contained(|| boom()).unwrap_err();
        let b = run_contained(|| boom()).unwrap_err();
        assert_eq!(a, b);
    }

    #[test]
    fn state_mutations_before_the_panic_survive() {
        let mut progress = 0u32;
        let result = run_contained(|| {
            progress = 3;
            panic!("late")
        });
        assert!(result.is_err());
        assert_eq!(progress, 3, "pre-panic writes must be observable");
    }
}
