#![warn(missing_docs)]
//! A miniature, policy-parameterised JVM for differential testing — the
//! substrate playing the role of the five JVM binaries in Table 3 of
//! *Coverage-Directed Differential Testing of JVM Implementations*
//! (PLDI 2016), plus the coverage-instrumented reference implementation.
//!
//! One startup engine implements the real pipeline — creation & loading
//! (format checking), linking (hierarchy checks + a dataflow bytecode
//! verifier), initialization (`<clinit>` interpretation), and invocation
//! (`main` interpretation) — and a [`VmSpec`] selects the vendor policy:
//! which checks run, when methods are verified, and which bootstrap library
//! generation is visible. Every check site is instrumented with coverage
//! probes, so running the `hotspot9` profile with [`Jvm::run_traced`] yields
//! the tracefiles classfuzz's uniqueness criteria consume.
//!
//! # Examples
//!
//! ```
//! use classfuzz_jimple::{lower::lower_class, IrClass};
//! use classfuzz_vm::{Jvm, VmSpec};
//!
//! let bytes = lower_class(&IrClass::with_hello_main("demo/A", "Completed!")).to_bytes();
//! for spec in VmSpec::all_five() {
//!     let result = Jvm::new(spec).run(&bytes);
//!     assert_eq!(result.outcome.phase().code(), 0); // normally invoked
//! }
//! ```

pub mod analysis;
pub mod containment;
pub mod cov;
pub mod exec;
pub mod interp;
pub mod library;
pub mod linker;
pub mod loader;
pub mod outcome;
pub mod prepared;
pub mod spec;
pub mod startup;
pub mod verifier;
pub mod world;

pub use analysis::{analyze_method, AnalysisTable, MethodAnalysis};
pub use containment::run_contained;
pub use cov::Cov;
pub use exec::ExecOutcome;
pub use library::shared_library;
pub use outcome::{JvmError, JvmErrorKind, Outcome, Phase};
pub use prepared::{prepare_method, PreparedCode, PreparedTable};
pub use spec::{FinalSuperError, JreGeneration, Vendor, VmSpec};
pub use startup::{preparse, ExecutionResult, Jvm, PreparsedClass};
pub use world::{UserClass, World};
