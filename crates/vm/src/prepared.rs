//! Prepare-once execution: per-method [`PreparedCode`] with branch and
//! switch targets pre-resolved from byte offsets to instruction indices,
//! constant-pool references resolved to symbolic triples, and push
//! constants materialized — built once per `(class, method)` and shared
//! through the [`PreparedTable`] riding on every
//! [`UserClass`](crate::world::UserClass).
//!
//! This is the interpreter's version of the resolve-once/run-many move the
//! harness made for parsing (`preparse`) and the mutator made for lowering
//! (`LowerScratch`): the old execute loop cloned the whole `Code`
//! attribute and constant pool per call, rebuilt a `pc → index` BTreeMap,
//! and cloned every instruction per dispatched step. Preparation does all
//! of that exactly once; the loop then iterates `PInsn`s by reference.
//!
//! Two invariants make the cache safe to share across the five profiles
//! and the async engine:
//!
//! * preparation is a **pure function of the classfile** — it never
//!   consults the [`World`](crate::world::World) or the
//!   [`VmSpec`](crate::spec::VmSpec), so the same `PreparedCode` is
//!   correct under every profile's (different) library generation and
//!   policy knobs. Anything world- or spec-dependent (class existence,
//!   subtype tests, lazy verification, internal-access policy) stays in
//!   the execute loop;
//! * preparation contains **no coverage probes** — every probe the cold
//!   path fired per execution still fires per execution on the prepared
//!   path, so fixed-seed traces are bit-identical whether a method is
//!   prepared fresh or served from the table.
//!
//! Error semantics are deferred, not decided: an unresolvable branch
//! target, member reference, or `ldc` constant becomes a dedicated
//! `PInsn` variant (or a `u32::MAX` sentinel) that raises the exact same
//! error as the cold path — and only if the instruction actually executes
//! (a branch to a non-instruction is an error only when *taken*).

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

use classfuzz_classfile::{Constant, Instruction, MethodDescriptor, Opcode};

use crate::world::UserClass;

/// A member reference resolved to its symbolic `(class, name, descriptor)`
/// triple once, at preparation time.
#[derive(Debug)]
pub struct MemberRef {
    /// Referenced class binary name.
    pub class: String,
    /// Member name.
    pub name: String,
    /// Member descriptor text.
    pub desc: String,
}

/// Catch clause of a prepared exception-table entry.
#[derive(Debug)]
pub enum PCatch {
    /// `catch_type == 0`: catches everything.
    All,
    /// Catches subtypes of the named class.
    Class(Arc<str>),
    /// The catch type does not resolve to a class name: never catches.
    Unresolvable,
}

/// A prepared exception-table entry. The protected range stays in byte
/// offsets (matched against the faulting instruction's original pc); the
/// handler target is pre-resolved to an instruction index.
#[derive(Debug)]
pub struct PHandler {
    /// Start of the protected range (byte offset, inclusive).
    pub start_pc: u32,
    /// End of the protected range (byte offset, exclusive).
    pub end_pc: u32,
    /// Handler entry point as an instruction index; `None` when
    /// `handler_pc` lands between instructions (the throw then escapes,
    /// exactly as on the cold path).
    pub handler: Option<u32>,
    /// What the entry catches.
    pub catch: PCatch,
}

/// One prepared instruction. Branch targets are instruction indices
/// (`u32::MAX` = unresolvable, an error only when the branch is taken);
/// switch targets use `insns.len()` as the ran-off-the-code-array
/// sentinel, preserving the cold path's `InternalError` at the next loop
/// head.
#[derive(Debug)]
pub enum PInsn {
    /// An operand-free opcode, executed as before.
    Simple(Opcode),
    /// `bipush` / `sipush` / `ldc` of an `Integer`: push an int.
    PushI(i32),
    /// `ldc2_w` of a `Long`: push a long.
    PushL(i64),
    /// `ldc` of a `Float`: push a float.
    PushF(f32),
    /// `ldc2_w` of a `Double`: push a double.
    PushD(f64),
    /// `ldc` of a `String` (or `Class`, which pushes `"<class>"`): intern
    /// a fresh heap string per execution, exactly like the cold path.
    PushStr(Arc<str>),
    /// `ldc` of anything else: `ClassFormatError` when executed.
    LdcUnusable,
    /// Wide-format local load/store.
    Local(Opcode, u16),
    /// `iinc`.
    Iinc {
        /// Local slot.
        index: u16,
        /// Signed increment.
        delta: i16,
    },
    /// A branch with its target as an instruction index; `u32::MAX` marks
    /// a target that is not an instruction boundary (`VerifyError` only
    /// when taken).
    Branch(Opcode, u32),
    /// A field access with its member reference pre-resolved.
    Field(Opcode, Arc<MemberRef>),
    /// A field access whose constant-pool reference does not resolve:
    /// `NoSuchFieldError` when executed.
    FieldUnresolved,
    /// A method invocation with the reference pre-resolved and the
    /// argument count pre-counted from the parsed descriptor.
    Invoke {
        /// `invokestatic` pops no receiver.
        is_static: bool,
        /// Number of declared parameters to pop.
        nargs: usize,
        /// The symbolic method reference.
        mref: Arc<MemberRef>,
    },
    /// An invocation whose constant-pool reference does not resolve:
    /// `NoSuchMethodError` when executed (checked before the descriptor,
    /// matching cold-path error order).
    InvokeUnresolved,
    /// An invocation whose descriptor does not parse: `NoSuchMethodError`
    /// naming the descriptor when executed.
    InvokeBadDesc(Arc<str>),
    /// `invokedynamic`: unsupported, `UnsatisfiedLinkError` when executed.
    InvokeDynamic,
    /// `new` with the class name pre-resolved (existence and policy checks
    /// stay at runtime — they are world/spec-dependent).
    New(Arc<str>),
    /// `new` of an unresolvable class reference: `NoClassDefFoundError`
    /// when executed.
    NewUnresolved,
    /// `newarray` with its primitive type tag.
    NewArray(u8),
    /// `anewarray` with the element descriptor (`L<name>;`) pre-rendered.
    ANewArray(Arc<str>),
    /// `checkcast` with the target class name pre-resolved.
    CheckCast(Arc<str>),
    /// `instanceof` with the target class name pre-resolved.
    InstanceOf(Arc<str>),
    /// `multianewarray` with its dimension count.
    MultiANewArray(u8),
    /// `tableswitch` with all targets as instruction indices
    /// (`insns.len()` = ran-off sentinel).
    TableSwitch {
        /// Lowest key of the table range.
        low: i32,
        /// Highest key of the table range.
        high: i32,
        /// Per-key targets, as instruction indices.
        targets: Vec<u32>,
        /// Default target, as an instruction index.
        default: u32,
    },
    /// `lookupswitch` with all targets as instruction indices.
    LookupSwitch {
        /// `(key, target-index)` pairs in declaration order.
        pairs: Vec<(i32, u32)>,
        /// Default target, as an instruction index.
        default: u32,
    },
}

/// A method's `Code` attribute, prepared for repeated execution.
#[derive(Debug)]
pub struct PreparedCode {
    /// Operand-stack size to reserve.
    pub max_stack: u16,
    /// Local-variable count to allocate.
    pub max_locals: u16,
    /// The flattened instruction stream.
    pub insns: Vec<PInsn>,
    /// Original byte offset of each instruction (for exception-range
    /// matching against the prepared handler table).
    pub pcs: Vec<u32>,
    /// Prepared exception table, in declaration order.
    pub handlers: Vec<PHandler>,
}

/// Prepares method `method_index` of `class` for execution; `None` when
/// the method has no `Code` attribute (the caller raises the same
/// `AbstractMethodError` the cold path did).
///
/// Pure function of the classfile: no world, no spec, no coverage probes.
pub fn prepare_method(class: &UserClass, method_index: usize) -> Option<PreparedCode> {
    let code = class.cf.methods.get(method_index)?.code()?;
    let cp = &class.cf.constant_pool;

    // Instruction offsets for branch/switch/handler resolution — computed
    // once here instead of per execution.
    let mut pcs = Vec::with_capacity(code.instructions.len());
    let mut pc_to_idx = BTreeMap::new();
    let mut pc = 0u32;
    for (i, insn) in code.instructions.iter().enumerate() {
        pcs.push(pc);
        pc_to_idx.insert(pc, i);
        pc += insn.encoded_len(pc);
    }
    // Switch targets that are not instruction boundaries run off the code
    // array, exactly like the cold path's `unwrap_or(instructions.len())`.
    let miss = code.instructions.len() as u32;
    let switch_target = |t: &u32| pc_to_idx.get(t).map(|&i| i as u32).unwrap_or(miss);

    let insns = code
        .instructions
        .iter()
        .map(|insn| match insn {
            Instruction::Simple(op) => PInsn::Simple(*op),
            Instruction::Bipush(v) => PInsn::PushI(*v as i32),
            Instruction::Sipush(v) => PInsn::PushI(*v as i32),
            Instruction::Ldc(cpi) | Instruction::LdcW(cpi) | Instruction::Ldc2W(cpi) => {
                match cp.entry(*cpi) {
                    Some(Constant::Integer(v)) => PInsn::PushI(*v),
                    Some(Constant::Long(v)) => PInsn::PushL(*v),
                    Some(Constant::Float(v)) => PInsn::PushF(*v),
                    Some(Constant::Double(v)) => PInsn::PushD(*v),
                    Some(Constant::String(s)) => {
                        PInsn::PushStr(cp.utf8_text(*s).unwrap_or_default().into())
                    }
                    Some(Constant::Class(_)) => PInsn::PushStr("<class>".into()),
                    _ => PInsn::LdcUnusable,
                }
            }
            Instruction::Local(op, slot) => PInsn::Local(*op, *slot),
            Instruction::Iinc { index, delta } => PInsn::Iinc {
                index: *index,
                delta: *delta,
            },
            Instruction::Branch(op, target) => PInsn::Branch(
                *op,
                pc_to_idx.get(target).map(|&i| i as u32).unwrap_or(u32::MAX),
            ),
            Instruction::Field(op, cpi) => match cp.member_ref_parts(*cpi) {
                Some((class, name, desc)) => {
                    PInsn::Field(*op, Arc::new(MemberRef { class, name, desc }))
                }
                None => PInsn::FieldUnresolved,
            },
            Instruction::Invoke(_, cpi) | Instruction::InvokeInterface { index: cpi, .. } => {
                let is_static = matches!(insn, Instruction::Invoke(Opcode::Invokestatic, _));
                match cp.member_ref_parts(*cpi) {
                    Some((class, name, desc)) => match MethodDescriptor::parse(&desc) {
                        Ok(d) => PInsn::Invoke {
                            is_static,
                            nargs: d.params.len(),
                            mref: Arc::new(MemberRef { class, name, desc }),
                        },
                        Err(_) => PInsn::InvokeBadDesc(desc.into()),
                    },
                    None => PInsn::InvokeUnresolved,
                }
            }
            Instruction::InvokeDynamic(_) => PInsn::InvokeDynamic,
            Instruction::New(cpi) => match cp.class_name(*cpi) {
                Some(name) => PInsn::New(name.into()),
                None => PInsn::NewUnresolved,
            },
            Instruction::NewArray(atype) => PInsn::NewArray(*atype),
            Instruction::ANewArray(cpi) => {
                let name = cp
                    .class_name(*cpi)
                    .unwrap_or_else(|| "java/lang/Object".into());
                PInsn::ANewArray(format!("L{name};").into())
            }
            Instruction::CheckCast(cpi) => {
                PInsn::CheckCast(cp.class_name(*cpi).unwrap_or_default().into())
            }
            Instruction::InstanceOf(cpi) => {
                PInsn::InstanceOf(cp.class_name(*cpi).unwrap_or_default().into())
            }
            Instruction::MultiANewArray { dims, .. } => PInsn::MultiANewArray(*dims),
            Instruction::TableSwitch(ts) => PInsn::TableSwitch {
                low: ts.low,
                high: ts.high,
                targets: ts.targets.iter().map(&switch_target).collect(),
                default: switch_target(&ts.default),
            },
            Instruction::LookupSwitch(ls) => PInsn::LookupSwitch {
                pairs: ls
                    .pairs
                    .iter()
                    .map(|(k, t)| (*k, switch_target(t)))
                    .collect(),
                default: switch_target(&ls.default),
            },
        })
        .collect();

    let handlers = code
        .exception_table
        .iter()
        .map(|e| PHandler {
            start_pc: e.start_pc as u32,
            end_pc: e.end_pc as u32,
            handler: pc_to_idx.get(&(e.handler_pc as u32)).map(|&i| i as u32),
            catch: if e.catch_type.0 == 0 {
                PCatch::All
            } else {
                match cp.class_name(e.catch_type) {
                    Some(name) => PCatch::Class(name.into()),
                    None => PCatch::Unresolvable,
                }
            },
        })
        .collect();

    Some(PreparedCode {
        max_stack: code.max_stack,
        max_locals: code.max_locals,
        insns,
        pcs,
        handlers,
    })
}

/// The per-class prepared-method table: one lazily-filled slot per
/// classfile method, shared by `Arc` so every clone of a `UserClass`
/// (and every world overlay holding the same preparse handle) sees the
/// same slots. `OnceLock` makes first-preparation race-free under the
/// async engine; content is a pure function of the classfile, so sharing
/// across profiles is sound.
#[derive(Debug, Clone)]
pub struct PreparedTable {
    slots: Arc<Vec<OnceLock<Option<Arc<PreparedCode>>>>>,
}

impl PreparedTable {
    /// A table with one empty slot per classfile method.
    pub fn for_methods(count: usize) -> PreparedTable {
        PreparedTable {
            slots: Arc::new((0..count).map(|_| OnceLock::new()).collect()),
        }
    }

    /// The prepared code for `method_index`, building it on first use.
    /// `None` when the index is out of range or the method has no `Code`
    /// attribute.
    pub fn get_or_prepare(
        &self,
        class: &UserClass,
        method_index: usize,
    ) -> Option<Arc<PreparedCode>> {
        self.slots
            .get(method_index)?
            .get_or_init(|| prepare_method(class, method_index).map(Arc::new))
            .clone()
    }

    /// How many method slots the table has.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the table has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

impl fmt::Display for PreparedTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let filled = self.slots.iter().filter(|s| s.get().is_some()).count();
        write!(f, "PreparedTable({filled}/{} prepared)", self.slots.len())
    }
}
