//! Linking: hierarchy resolution, preparation-time checks, and (policy-
//! dependent) `throws`-clause resolution (Table 1, row 2).

use crate::cov::Cov;
use crate::outcome::{JvmErrorKind, Outcome, Phase};
use crate::spec::{FinalSuperError, VmSpec};
use crate::world::{UserClass, World};
use crate::{probe, probe_branch};

type LinkResult = Result<(), Outcome>;

/// Resolves and checks the class hierarchy of `class`.
///
/// # Errors
///
/// * `NoClassDefFoundError` / `ClassCircularityError` — loading phase;
/// * `IncompatibleClassChangeError` / `VerifyError` (final superclass,
///   malformed hierarchy) — linking phase;
/// * `IllegalAccessError` / `NoClassDefFoundError` from `throws`-clause
///   resolution — linking phase (HotSpot-style eager resolution only).
pub fn link_check(world: &World, class: &UserClass, spec: &VmSpec, cov: &mut Cov) -> LinkResult {
    probe!(cov);
    check_hierarchy(world, class, spec, cov)?;
    if probe_branch!(cov, spec.resolve_throws_clauses) {
        resolve_throws(world, class, spec, cov)?;
    }
    Ok(())
}

fn check_hierarchy(world: &World, class: &UserClass, spec: &VmSpec, cov: &mut Cov) -> LinkResult {
    probe!(cov);
    if let Some(super_name) = &class.super_name {
        probe!(cov);
        if probe_branch!(cov, !world.exists(super_name)) {
            return Err(Outcome::rejected(
                Phase::Loading,
                JvmErrorKind::NoClassDefFoundError,
                format!("superclass not found: {super_name}"),
            ));
        }
        if probe_branch!(cov, world.has_circularity(&class.name)) {
            return Err(Outcome::rejected(
                Phase::Loading,
                JvmErrorKind::ClassCircularityError,
                class.name.clone(),
            ));
        }
        if probe_branch!(cov, world.is_interface(super_name) == Some(true)) {
            return Err(Outcome::rejected(
                Phase::Linking,
                JvmErrorKind::IncompatibleClassChangeError,
                format!(
                    "class {} has interface {super_name} as super class",
                    class.name
                ),
            ));
        }
        // The EnumEditor case: final superclass. HotSpot reports
        // VerifyError, others IncompatibleClassChangeError.
        if probe_branch!(cov, world.is_final(super_name) == Some(true)) {
            let kind = match spec.final_super_error {
                FinalSuperError::Verify => JvmErrorKind::VerifyError,
                FinalSuperError::IncompatibleClassChange => {
                    JvmErrorKind::IncompatibleClassChangeError
                }
            };
            return Err(Outcome::rejected(
                Phase::Linking,
                kind,
                format!("cannot inherit from final class {super_name}"),
            ));
        }
        if probe_branch!(
            cov,
            spec.reject_internal_access && world.is_internal(super_name)
        ) {
            return Err(Outcome::rejected(
                Phase::Linking,
                JvmErrorKind::IllegalAccessError,
                format!("superclass {super_name} is not accessible"),
            ));
        }
    }
    for iface in &class.interfaces {
        probe!(cov);
        if probe_branch!(cov, !world.exists(iface)) {
            return Err(Outcome::rejected(
                Phase::Loading,
                JvmErrorKind::NoClassDefFoundError,
                format!("interface not found: {iface}"),
            ));
        }
        if probe_branch!(cov, world.is_interface(iface) == Some(false)) {
            return Err(Outcome::rejected(
                Phase::Linking,
                JvmErrorKind::IncompatibleClassChangeError,
                format!("class {} can't implement class {iface}", class.name),
            ));
        }
        if probe_branch!(cov, spec.reject_internal_access && world.is_internal(iface)) {
            return Err(Outcome::rejected(
                Phase::Linking,
                JvmErrorKind::IllegalAccessError,
                format!("interface {iface} is not accessible"),
            ));
        }
    }
    Ok(())
}

/// Problem 3: HotSpot resolves the classes named in `throws` clauses during
/// linking; a missing class or an encapsulated internal class is exposed
/// here — J9 and GIJ never look.
fn resolve_throws(world: &World, class: &UserClass, spec: &VmSpec, cov: &mut Cov) -> LinkResult {
    probe!(cov);
    for m in &class.methods {
        for exc in &m.exceptions {
            probe!(cov);
            if probe_branch!(cov, !world.exists(exc)) {
                return Err(Outcome::rejected(
                    Phase::Linking,
                    JvmErrorKind::NoClassDefFoundError,
                    format!("{exc} (declared thrown by {}.{})", class.name, m.name),
                ));
            }
            if probe_branch!(cov, spec.reject_internal_access && world.is_internal(exc)) {
                return Err(Outcome::rejected(
                    Phase::Linking,
                    JvmErrorKind::IllegalAccessError,
                    format!(
                        "tried to access class {exc} from class {} (declared thrown by {})",
                        class.name, m.name
                    ),
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use classfuzz_jimple::{lower::lower_class, IrClass};

    fn link(class: &IrClass, spec: &VmSpec) -> LinkResult {
        let user = UserClass::summarize(lower_class(class));
        let world = World::new(spec, vec![user]);
        let user = world.user_class(&class.name).unwrap();
        link_check(&world, user, spec, &mut Cov::disabled())
    }

    fn kind(r: LinkResult) -> (Phase, JvmErrorKind) {
        match r.unwrap_err() {
            Outcome::Rejected { phase, error } => (phase, error.kind),
            other => panic!("expected rejection, got {other}"),
        }
    }

    #[test]
    fn missing_superclass_is_ncdfe_at_loading() {
        let mut c = IrClass::new("p/A");
        c.super_class = Some("no/Such".into());
        assert_eq!(
            kind(link(&c, &VmSpec::hotspot9())),
            (Phase::Loading, JvmErrorKind::NoClassDefFoundError)
        );
    }

    #[test]
    fn final_superclass_error_kind_differs_by_vendor() {
        // jre/beans/AbstractEditor is final from JRE 8 on.
        let mut c = IrClass::new("p/Editor");
        c.super_class = Some("jre/beans/AbstractEditor".into());
        assert!(link(&c, &VmSpec::hotspot7()).is_ok(), "open class in JRE 7");
        assert_eq!(
            kind(link(&c, &VmSpec::hotspot8())),
            (Phase::Linking, JvmErrorKind::VerifyError)
        );
        assert_eq!(
            kind(link(&c, &VmSpec::j9())),
            (Phase::Linking, JvmErrorKind::IncompatibleClassChangeError)
        );
    }

    #[test]
    fn superclass_interface_rejected() {
        let mut c = IrClass::new("p/B");
        c.super_class = Some("java/util/Map".into());
        assert_eq!(
            kind(link(&c, &VmSpec::hotspot9())),
            (Phase::Linking, JvmErrorKind::IncompatibleClassChangeError)
        );
    }

    #[test]
    fn implementing_a_class_rejected() {
        let mut c = IrClass::new("p/C");
        c.interfaces.push("java/lang/Thread".into());
        assert_eq!(
            kind(link(&c, &VmSpec::j9())),
            (Phase::Linking, JvmErrorKind::IncompatibleClassChangeError)
        );
    }

    #[test]
    fn problem3_throws_clause_internal_class() {
        // M1437121261: main declares `throws sun/internal/PiscesKit$2`.
        let mut c = IrClass::with_hello_main("M1437121261", "x");
        c.methods[0]
            .exceptions
            .push("sun/internal/PiscesKit$2".into());
        assert_eq!(
            kind(link(&c, &VmSpec::hotspot9())),
            (Phase::Linking, JvmErrorKind::IllegalAccessError)
        );
        assert!(
            link(&c, &VmSpec::j9()).is_ok(),
            "J9 does not resolve throws clauses"
        );
        assert!(
            link(&c, &VmSpec::gij()).is_ok(),
            "GIJ does not resolve throws clauses"
        );
    }

    #[test]
    fn throws_clause_missing_class() {
        let mut c = IrClass::with_hello_main("p/T", "x");
        c.methods[0].exceptions.push("gone/Missing".into());
        assert_eq!(
            kind(link(&c, &VmSpec::hotspot8())),
            (Phase::Linking, JvmErrorKind::NoClassDefFoundError)
        );
        assert!(link(&c, &VmSpec::gij()).is_ok());
    }

    #[test]
    fn jre_generation_gates_environment_classes() {
        let mut c = IrClass::new("p/Legacy");
        c.super_class = Some("jre/ext/LegacySupport".into());
        assert!(link(&c, &VmSpec::hotspot7()).is_ok());
        assert_eq!(
            kind(link(&c, &VmSpec::hotspot8())),
            (Phase::Loading, JvmErrorKind::NoClassDefFoundError)
        );
    }
}
