//! Coverage collection plumbing: the GCOV analogue for the reference JVM.
//!
//! Every semantic decision point in this crate is instrumented with
//! [`probe!`](crate::probe) (a statement site) or
//! [`probe_branch!`](crate::probe_branch) (a branch site plus direction).
//! Site ids are computed at compile time from `(file, line, column)`, so the
//! instrumentation's cost at runtime is a set insertion — and nothing at all
//! when collection is disabled.

use classfuzz_coverage::{SiteId, TraceFile};

/// A coverage collector threaded through the startup pipeline.
#[derive(Debug, Default)]
pub struct Cov {
    trace: Option<TraceFile>,
}

impl Cov {
    /// A collector that records sites.
    pub fn enabled() -> Cov {
        Cov {
            trace: Some(TraceFile::new()),
        }
    }

    /// A collector that drops everything (non-reference VMs).
    pub fn disabled() -> Cov {
        Cov { trace: None }
    }

    /// Records a statement site.
    #[inline]
    pub fn stmt(&mut self, site: SiteId) {
        if let Some(t) = &mut self.trace {
            t.hit_stmt(site);
        }
    }

    /// Records a branch direction at a site.
    #[inline]
    pub fn branch(&mut self, site: SiteId, taken: bool) {
        if let Some(t) = &mut self.trace {
            t.hit_branch(site, taken);
        }
    }

    /// Consumes the collector, yielding the tracefile when enabled.
    pub fn into_trace(self) -> Option<TraceFile> {
        self.trace
    }
}

/// Records a statement probe at the macro's source location.
#[macro_export]
macro_rules! probe {
    ($cov:expr) => {{
        const SITE: ::classfuzz_coverage::SiteId =
            ::classfuzz_coverage::site_id(file!(), line!(), column!());
        $cov.stmt(SITE);
    }};
}

/// Records a branch probe and evaluates to the condition's value, so it can
/// wrap `if` conditions transparently:
/// `if probe_branch!(cov, x > 0) { ... }`.
#[macro_export]
macro_rules! probe_branch {
    ($cov:expr, $cond:expr) => {{
        const SITE: ::classfuzz_coverage::SiteId =
            ::classfuzz_coverage::site_id(file!(), line!(), column!());
        let taken: bool = $cond;
        $cov.branch(SITE, taken);
        taken
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_collects_disabled_drops() {
        let mut on = Cov::enabled();
        let mut off = Cov::disabled();
        probe!(on);
        probe!(off);
        let hit = probe_branch!(on, 1 + 1 == 2);
        assert!(hit);
        probe_branch!(off, false);
        let trace = on.into_trace().unwrap();
        assert_eq!(trace.stats().stmt, 1);
        assert_eq!(trace.stats().br, 1);
        assert!(off.into_trace().is_none());
    }

    #[test]
    fn distinct_locations_distinct_sites() {
        let mut cov = Cov::enabled();
        probe!(cov);
        probe!(cov); // different line ⇒ different site
        assert_eq!(cov.into_trace().unwrap().stats().stmt, 2);
    }

    #[test]
    fn branch_directions_are_separate_sites() {
        let mut cov = Cov::enabled();
        for v in [true, false] {
            probe_branch!(cov, v);
        }
        assert_eq!(cov.into_trace().unwrap().stats().br, 2);
    }
}
