//! Coverage collection plumbing: the GCOV analogue for the reference JVM.
//!
//! Every semantic decision point in this crate is instrumented with
//! [`probe!`](crate::probe) (a statement site) or
//! [`probe_branch!`](crate::probe_branch) (a branch site plus direction).
//! Site ids are computed at compile time from `(file, line, column)`, and
//! each probe expansion carries a `static` slot cache resolved against the
//! process-wide [`SiteUniverse`](classfuzz_coverage::SiteUniverse) on first
//! hit — so the steady-state cost of a probe is a relaxed atomic load plus
//! one bit-OR into the tracefile's word array, and nothing at all when
//! collection is disabled.

use std::sync::atomic::{AtomicU32, Ordering};

use classfuzz_coverage::{SiteId, SiteUniverse, TraceFile, UNRESOLVED_SLOT};

/// A coverage collector threaded through the startup pipeline.
#[derive(Debug, Default)]
pub struct Cov {
    trace: Option<TraceFile>,
}

impl Cov {
    /// A collector that records sites.
    pub fn enabled() -> Cov {
        Cov {
            trace: Some(TraceFile::new()),
        }
    }

    /// A collector that records into `buf`, cleared first — the campaign
    /// engines' reusable per-shard trace buffer, which avoids reallocating
    /// the word arrays on every candidate execution.
    pub fn enabled_reusing(mut buf: TraceFile) -> Cov {
        buf.clear();
        Cov { trace: Some(buf) }
    }

    /// A collector that drops everything (non-reference VMs).
    pub fn disabled() -> Cov {
        Cov { trace: None }
    }

    /// Records a statement site.
    #[inline]
    pub fn stmt(&mut self, site: SiteId) {
        if let Some(t) = &mut self.trace {
            t.hit_stmt(site);
        }
    }

    /// Records a branch direction at a site.
    #[inline]
    pub fn branch(&mut self, site: SiteId, taken: bool) {
        if let Some(t) = &mut self.trace {
            t.hit_branch(site, taken);
        }
    }

    /// Records a statement site through a per-probe-site slot cache (the
    /// `static` each [`probe!`](crate::probe) expansion carries): the
    /// universe is consulted once per site per process, after which the
    /// probe costs a relaxed load and a bit-OR.
    #[inline]
    pub fn stmt_cached(&mut self, site: SiteId, cache: &AtomicU32) {
        if let Some(t) = &mut self.trace {
            let mut slot = cache.load(Ordering::Relaxed);
            if slot == UNRESOLVED_SLOT {
                slot = SiteUniverse::global().stmt_slot(site);
                cache.store(slot, Ordering::Relaxed);
            }
            t.set_stmt_slot(slot);
        }
    }

    /// Records a branch direction through a per-site cache holding the
    /// branch's *base* slot (direction selects base or base + 1).
    #[inline]
    pub fn branch_cached(&mut self, site: SiteId, taken: bool, cache: &AtomicU32) {
        if let Some(t) = &mut self.trace {
            let mut base = cache.load(Ordering::Relaxed);
            if base == UNRESOLVED_SLOT {
                base = SiteUniverse::global().branch_base(site);
                cache.store(base, Ordering::Relaxed);
            }
            t.set_branch_slot(base + taken as u32);
        }
    }

    /// Consumes the collector, yielding the tracefile when enabled.
    pub fn into_trace(self) -> Option<TraceFile> {
        self.trace
    }
}

/// Records a statement probe at the macro's source location.
///
/// Each expansion carries a `static` cache of the site's dense bit slot,
/// resolved against the global `SiteUniverse` on first hit.
#[macro_export]
macro_rules! probe {
    ($cov:expr) => {{
        const SITE: ::classfuzz_coverage::SiteId =
            ::classfuzz_coverage::site_id(file!(), line!(), column!());
        static SLOT: ::std::sync::atomic::AtomicU32 =
            ::std::sync::atomic::AtomicU32::new(::classfuzz_coverage::UNRESOLVED_SLOT);
        $cov.stmt_cached(SITE, &SLOT);
    }};
}

/// Records a branch probe and evaluates to the condition's value, so it can
/// wrap `if` conditions transparently:
/// `if probe_branch!(cov, x > 0) { ... }`.
///
/// The per-expansion `static` caches the branch's base slot; the direction
/// picks base (not taken) or base + 1 (taken).
#[macro_export]
macro_rules! probe_branch {
    ($cov:expr, $cond:expr) => {{
        const SITE: ::classfuzz_coverage::SiteId =
            ::classfuzz_coverage::site_id(file!(), line!(), column!());
        static SLOT: ::std::sync::atomic::AtomicU32 =
            ::std::sync::atomic::AtomicU32::new(::classfuzz_coverage::UNRESOLVED_SLOT);
        let taken: bool = $cond;
        $cov.branch_cached(SITE, taken, &SLOT);
        taken
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_collects_disabled_drops() {
        let mut on = Cov::enabled();
        let mut off = Cov::disabled();
        probe!(on);
        probe!(off);
        let hit = probe_branch!(on, 1 + 1 == 2);
        assert!(hit);
        probe_branch!(off, false);
        let trace = on.into_trace().unwrap();
        assert_eq!(trace.stats().stmt, 1);
        assert_eq!(trace.stats().br, 1);
        assert!(off.into_trace().is_none());
    }

    #[test]
    fn distinct_locations_distinct_sites() {
        let mut cov = Cov::enabled();
        probe!(cov);
        probe!(cov); // different line ⇒ different site
        assert_eq!(cov.into_trace().unwrap().stats().stmt, 2);
    }

    #[test]
    fn reused_buffer_starts_clean() {
        let mut cov = Cov::enabled();
        probe!(cov);
        let buf = cov.into_trace().unwrap();
        assert_eq!(buf.stats().stmt, 1);
        let mut cov2 = Cov::enabled_reusing(buf);
        probe_branch!(cov2, true);
        let t = cov2.into_trace().unwrap();
        assert_eq!(t.stats().stmt, 0, "previous run's sites must be cleared");
        assert_eq!(t.stats().br, 1);
    }

    #[test]
    fn branch_directions_are_separate_sites() {
        let mut cov = Cov::enabled();
        for v in [true, false] {
            probe_branch!(cov, v);
        }
        assert_eq!(cov.into_trace().unwrap().stats().br, 2);
    }
}
