//! Creation & loading: classfile format checking (Table 1, row 1).
//!
//! Everything here can reject a class with `ClassFormatError`,
//! `UnsupportedClassVersionError`, or (for unresolvable hierarchy names)
//! `NoClassDefFoundError` — and *which* checks run is VM policy, which is
//! where the paper's Problems 1 and 4 live.

use classfuzz_classfile::{ClassAccess, FieldAccess, MethodAccess};

use crate::cov::Cov;
use crate::outcome::{JvmErrorKind, Outcome, Phase};
use crate::spec::VmSpec;
use crate::world::{MethodSummary, UserClass};
use crate::{probe, probe_branch};

type CheckResult = Result<(), Outcome>;

fn reject(kind: JvmErrorKind, msg: impl Into<String>) -> CheckResult {
    Err(Outcome::rejected(Phase::Loading, kind, msg))
}

/// Runs the complete format check of `class` under `spec`.
///
/// # Errors
///
/// Returns the rejecting [`Outcome`] (always in the loading phase).
pub fn format_check(class: &UserClass, spec: &VmSpec, cov: &mut Cov) -> CheckResult {
    probe!(cov);
    check_version(class, spec, cov)?;
    check_class_shape(class, spec, cov)?;
    check_fields(class, spec, cov)?;
    check_methods(class, spec, cov)?;
    Ok(())
}

fn check_version(class: &UserClass, spec: &VmSpec, cov: &mut Cov) -> CheckResult {
    probe!(cov);
    if probe_branch!(cov, class.cf.major_version > spec.max_class_version) {
        return reject(
            JvmErrorKind::UnsupportedClassVersionError,
            format!(
                "{} : unsupported major.minor version {}.{}",
                class.name, class.cf.major_version, class.cf.minor_version
            ),
        );
    }
    if probe_branch!(cov, class.cf.major_version < 45) {
        return reject(JvmErrorKind::ClassFormatError, "class version below 45.0");
    }
    Ok(())
}

/// Is `name` a legal binary class name (slash form)?
fn legal_class_name(name: &str) -> bool {
    !name.is_empty()
        && !name.starts_with('$')
        && name
            .split('/')
            .all(|seg| !seg.is_empty() && seg.chars().all(|c| c != ';' && c != '[' && c != '.'))
}

fn legal_member_name(name: &str) -> bool {
    !name.is_empty()
        && name != "$badname"
        && name.chars().all(|c| !matches!(c, '.' | ';' | '[' | '/'))
}

fn check_class_shape(class: &UserClass, spec: &VmSpec, cov: &mut Cov) -> CheckResult {
    probe!(cov);
    if probe_branch!(cov, !legal_class_name(&class.name)) {
        return reject(
            JvmErrorKind::ClassFormatError,
            format!("illegal class name {:?}", class.name),
        );
    }
    let acc = class.cf.access;
    let is_interface = acc.contains(ClassAccess::INTERFACE);
    if probe_branch!(
        cov,
        acc.contains(ClassAccess::FINAL) && acc.contains(ClassAccess::ABSTRACT)
    ) {
        return reject(
            JvmErrorKind::ClassFormatError,
            "class cannot be both final and abstract",
        );
    }
    if is_interface {
        probe!(cov);
        if probe_branch!(cov, acc.contains(ClassAccess::FINAL)) {
            return reject(JvmErrorKind::ClassFormatError, "interface cannot be final");
        }
        // Version-dependent checking (the paper's §3.1.1 note: "HotSpot
        // accepts some dubious/illegal constructs in a version 46 class but
        // rejects them if they appear in a version 51 class"): the
        // interface-ACC_ABSTRACT discipline only exists for classfiles of
        // major version ≥ 49.
        if probe_branch!(
            cov,
            spec.interface_members_must_be_public
                && class.cf.major_version >= 49
                && !acc.contains(ClassAccess::ABSTRACT)
        ) {
            return reject(
                JvmErrorKind::ClassFormatError,
                "interface must have its ACC_ABSTRACT flag set",
            );
        }
        // Problem 4: an interface's superclass must be java/lang/Object —
        // syntactically checkable. GIJ "fails in catching this kind of
        // illegal inheritance structures".
        let super_ok = class.super_name.as_deref() == Some("java/lang/Object");
        if probe_branch!(cov, spec.interface_must_extend_object && !super_ok) {
            return reject(
                JvmErrorKind::ClassFormatError,
                format!(
                    "the superclass of interface {} must be java/lang/Object",
                    class.name
                ),
            );
        }
    } else if probe_branch!(
        cov,
        class.super_name.is_none() && class.name != "java/lang/Object"
    ) {
        return reject(JvmErrorKind::ClassFormatError, "missing superclass entry");
    }
    Ok(())
}

fn check_fields(class: &UserClass, spec: &VmSpec, cov: &mut Cov) -> CheckResult {
    probe!(cov);
    let is_interface = class.cf.access.contains(ClassAccess::INTERFACE);
    for (i, f) in class.fields.iter().enumerate() {
        probe!(cov);
        if probe_branch!(cov, !legal_member_name(&f.name)) {
            return reject(
                JvmErrorKind::ClassFormatError,
                format!("illegal field name {:?}", f.name),
            );
        }
        if probe_branch!(cov, f.ty.is_none()) {
            return reject(
                JvmErrorKind::ClassFormatError,
                format!("field {} has invalid descriptor {:?}", f.name, f.desc_text),
            );
        }
        let visibility = [
            FieldAccess::PUBLIC,
            FieldAccess::PRIVATE,
            FieldAccess::PROTECTED,
        ]
        .iter()
        .filter(|&&v| f.access.contains(v))
        .count();
        if probe_branch!(cov, visibility > 1) {
            return reject(
                JvmErrorKind::ClassFormatError,
                format!("field {} has conflicting visibility flags", f.name),
            );
        }
        if probe_branch!(
            cov,
            f.access.contains(FieldAccess::FINAL) && f.access.contains(FieldAccess::VOLATILE)
        ) {
            return reject(
                JvmErrorKind::ClassFormatError,
                format!("field {} is both final and volatile", f.name),
            );
        }
        // Problem 4: interface fields must be public static final —
        // everywhere but GIJ.
        let iface_shape = f.access.contains(FieldAccess::PUBLIC)
            && f.access.contains(FieldAccess::STATIC)
            && f.access.contains(FieldAccess::FINAL);
        if probe_branch!(
            cov,
            is_interface && spec.interface_members_must_be_public && !iface_shape
        ) {
            return reject(
                JvmErrorKind::ClassFormatError,
                format!("interface field {} must be public static final", f.name),
            );
        }
        // Problem 4: duplicate fields — GIJ accepts them.
        let dup = class.fields[..i]
            .iter()
            .any(|g| g.name == f.name && g.desc_text == f.desc_text);
        if probe_branch!(cov, dup && !spec.allow_duplicate_fields) {
            return reject(
                JvmErrorKind::ClassFormatError,
                format!("duplicate field name&signature: {}", f.name),
            );
        }
    }
    Ok(())
}

fn check_methods(class: &UserClass, spec: &VmSpec, cov: &mut Cov) -> CheckResult {
    probe!(cov);
    let acc = class.cf.access;
    let is_interface = acc.contains(ClassAccess::INTERFACE);
    let class_abstract = acc.contains(ClassAccess::ABSTRACT);
    for (i, m) in class.methods.iter().enumerate() {
        probe!(cov);
        let dup = class.methods[..i]
            .iter()
            .any(|g| g.name == m.name && g.desc_text == m.desc_text);
        if probe_branch!(cov, dup) {
            return reject(
                JvmErrorKind::ClassFormatError,
                format!("duplicate method name&signature: {}", m.name),
            );
        }
        check_one_method(class, m, spec, is_interface, class_abstract, cov)?;
    }
    Ok(())
}

fn check_one_method(
    class: &UserClass,
    m: &MethodSummary,
    spec: &VmSpec,
    is_interface: bool,
    class_abstract: bool,
    cov: &mut Cov,
) -> CheckResult {
    probe!(cov);
    let named_clinit = m.name == "<clinit>";
    let is_initializer = named_clinit && m.access.contains(MethodAccess::STATIC);

    // Problem 1 (J9): any method *named* <clinit> must carry a Code
    // attribute, whatever its flags.
    if probe_branch!(
        cov,
        named_clinit && spec.clinit_requires_code && !m.has_code
    ) {
        return reject(
            JvmErrorKind::ClassFormatError,
            format!(
                "no Code attribute specified for non-native, non-abstract method; \
                 class={}, method=<clinit>{}, pc=0",
                class.name, m.desc_text
            ),
        );
    }
    // Problem 1 (HotSpot): other methods named <clinit> are of no
    // consequence — skip every remaining check.
    if probe_branch!(
        cov,
        named_clinit && !is_initializer && spec.clinit_flags_exempt
    ) {
        return Ok(());
    }

    if probe_branch!(
        cov,
        !legal_member_name(&m.name) && !named_clinit && m.name != "<init>"
    ) {
        return reject(
            JvmErrorKind::ClassFormatError,
            format!("illegal method name {:?}", m.name),
        );
    }
    if probe_branch!(cov, m.desc.is_none()) {
        return reject(
            JvmErrorKind::ClassFormatError,
            format!("method {} has invalid descriptor {:?}", m.name, m.desc_text),
        );
    }
    let visibility = [
        MethodAccess::PUBLIC,
        MethodAccess::PRIVATE,
        MethodAccess::PROTECTED,
    ]
    .iter()
    .filter(|&&v| m.access.contains(v))
    .count();
    if probe_branch!(cov, visibility > 1) {
        return reject(
            JvmErrorKind::ClassFormatError,
            format!("method {} has conflicting visibility flags", m.name),
        );
    }

    let is_abstract = m.access.contains(MethodAccess::ABSTRACT);
    let is_native = m.access.contains(MethodAccess::NATIVE);
    if is_abstract {
        probe!(cov);
        let bad = MethodAccess::FINAL
            | MethodAccess::NATIVE
            | MethodAccess::PRIVATE
            | MethodAccess::STATIC
            | MethodAccess::SYNCHRONIZED
            | MethodAccess::STRICT;
        if probe_branch!(cov, m.access.intersects(bad) && !is_initializer) {
            return reject(
                JvmErrorKind::ClassFormatError,
                format!("abstract method {} has incompatible flags", m.name),
            );
        }
        // §3.3: J9/GIJ reject an abstract method in a concrete class at
        // load time; HotSpot defers.
        if probe_branch!(
            cov,
            spec.reject_abstract_in_concrete && !class_abstract && !is_interface
        ) {
            return reject(
                JvmErrorKind::ClassFormatError,
                format!(
                    "abstract method {} in non-abstract class {}",
                    m.name, class.name
                ),
            );
        }
    }

    // Code-presence discipline.
    if probe_branch!(cov, !m.has_code && !is_abstract && !is_native) {
        return reject(
            JvmErrorKind::ClassFormatError,
            format!(
                "absent Code attribute in method {} that is not native or abstract",
                m.name
            ),
        );
    }
    if probe_branch!(cov, m.has_code && (is_abstract || is_native)) {
        return reject(
            JvmErrorKind::ClassFormatError,
            format!("Code attribute in native or abstract method {}", m.name),
        );
    }

    // Problem 4: <init> signature discipline — GIJ skips it entirely.
    if probe_branch!(cov, m.name == "<init>" && spec.strict_init_signature) {
        if probe_branch!(cov, is_interface) {
            return reject(
                JvmErrorKind::ClassFormatError,
                "interface cannot declare a constructor",
            );
        }
        let bad = MethodAccess::STATIC
            | MethodAccess::FINAL
            | MethodAccess::SYNCHRONIZED
            | MethodAccess::NATIVE
            | MethodAccess::ABSTRACT;
        if probe_branch!(cov, m.access.intersects(bad)) {
            return reject(
                JvmErrorKind::ClassFormatError,
                "method <init> must not be static, final, synchronized, native or abstract",
            );
        }
        let returns_void = m.desc.as_ref().map(|d| d.ret.is_none()).unwrap_or(false);
        if probe_branch!(cov, !returns_void) {
            return reject(
                JvmErrorKind::ClassFormatError,
                "method <init> must return void",
            );
        }
    }

    // Problem 4: interface methods must be public and abstract — GIJ skips.
    if probe_branch!(
        cov,
        is_interface
            && spec.interface_members_must_be_public
            && !named_clinit
            && !(m.access.contains(MethodAccess::PUBLIC) && is_abstract)
    ) {
        return reject(
            JvmErrorKind::ClassFormatError,
            format!("interface method {} must be public and abstract", m.name),
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use classfuzz_jimple::{lower::lower_class, IrClass, IrMethod, JType};

    fn check(class: &IrClass, spec: &VmSpec) -> CheckResult {
        let user = UserClass::summarize(lower_class(class));
        format_check(&user, spec, &mut Cov::disabled())
    }

    fn kind(r: CheckResult) -> JvmErrorKind {
        match r.unwrap_err() {
            Outcome::Rejected { error, .. } => error.kind,
            other => panic!("expected rejection, got {other}"),
        }
    }

    #[test]
    fn valid_class_passes_everywhere() {
        let c = IrClass::with_hello_main("ok/Fine", "hi");
        for spec in VmSpec::all_five() {
            assert!(
                check(&c, &spec).is_ok(),
                "{} rejected a valid class",
                spec.name
            );
        }
    }

    #[test]
    fn version_gate() {
        let mut c = IrClass::new("v/High");
        c.major_version = 53;
        assert_eq!(
            kind(check(&c, &VmSpec::hotspot7())),
            JvmErrorKind::UnsupportedClassVersionError
        );
        assert!(check(&c, &VmSpec::hotspot9()).is_ok());
    }

    #[test]
    fn problem1_clinit_without_code() {
        // Figure 2: public abstract <clinit> with no Code attribute.
        let mut c = IrClass::with_hello_main("M1436188543", "Completed!");
        c.methods.push(IrMethod::abstract_method(
            MethodAccess::PUBLIC | MethodAccess::ABSTRACT,
            "<clinit>",
            vec![],
            None,
        ));
        assert!(
            check(&c, &VmSpec::hotspot8()).is_ok(),
            "HotSpot: of no consequence"
        );
        assert_eq!(
            kind(check(&c, &VmSpec::j9())),
            JvmErrorKind::ClassFormatError
        );
    }

    #[test]
    fn problem4_interface_member_flags() {
        use classfuzz_classfile::ClassAccess;
        let mut c = IrClass::new("p/I");
        c.access = ClassAccess::PUBLIC | ClassAccess::INTERFACE | ClassAccess::ABSTRACT;
        // Non-public, non-abstract interface method.
        c.methods.push(IrMethod::abstract_method(
            MethodAccess::PROTECTED | MethodAccess::ABSTRACT,
            "m",
            vec![JType::Int],
            None,
        ));
        assert_eq!(
            kind(check(&c, &VmSpec::hotspot8())),
            JvmErrorKind::ClassFormatError
        );
        assert!(
            check(&c, &VmSpec::gij()).is_ok(),
            "GIJ accepts lax interface members"
        );
    }

    #[test]
    fn problem4_init_signature() {
        let mut c = IrClass::new("p/C");
        c.methods.push(IrMethod {
            access: MethodAccess::PUBLIC | MethodAccess::ABSTRACT,
            name: "<init>".into(),
            params: vec![JType::Int, JType::Int, JType::Int, JType::Boolean],
            ret: None,
            exceptions: vec![],
            body: None,
        });
        // HotSpot/J9 reject the <init> signature outright.
        assert_eq!(
            kind(check(&c, &VmSpec::hotspot8())),
            JvmErrorKind::ClassFormatError
        );
        // GIJ skips the <init> discipline, but its abstract-in-concrete
        // check still fires on a concrete class — make the class abstract
        // to isolate the <init> signature policy.
        use classfuzz_classfile::ClassAccess;
        c.access = ClassAccess::PUBLIC | ClassAccess::ABSTRACT | ClassAccess::SUPER;
        assert!(check(&c, &VmSpec::gij()).is_ok());
        assert_eq!(
            kind(check(&c, &VmSpec::j9())),
            JvmErrorKind::ClassFormatError
        );
    }

    #[test]
    fn problem4_duplicate_fields() {
        use classfuzz_classfile::FieldAccess;
        let mut c = IrClass::with_hello_main("p/Dup", "x");
        for _ in 0..2 {
            c.fields.push(classfuzz_jimple::IrField {
                access: FieldAccess::PUBLIC,
                name: "f".into(),
                ty: JType::Int,
                constant_value: None,
            });
        }
        assert_eq!(
            kind(check(&c, &VmSpec::hotspot8())),
            JvmErrorKind::ClassFormatError
        );
        assert!(check(&c, &VmSpec::gij()).is_ok());
    }

    #[test]
    fn interface_extending_class_is_format_error_except_gij() {
        use classfuzz_classfile::ClassAccess;
        let mut c = IrClass::new("p/BadIface");
        c.access = ClassAccess::PUBLIC | ClassAccess::INTERFACE | ClassAccess::ABSTRACT;
        c.super_class = Some("java/lang/Exception".into());
        assert_eq!(
            kind(check(&c, &VmSpec::hotspot8())),
            JvmErrorKind::ClassFormatError
        );
        assert_eq!(
            kind(check(&c, &VmSpec::j9())),
            JvmErrorKind::ClassFormatError
        );
        assert!(check(&c, &VmSpec::gij()).is_ok());
    }

    #[test]
    fn final_volatile_field_rejected() {
        use classfuzz_classfile::FieldAccess;
        let mut c = IrClass::new("p/FV");
        c.fields.push(classfuzz_jimple::IrField {
            access: FieldAccess::FINAL | FieldAccess::VOLATILE,
            name: "f".into(),
            ty: JType::Int,
            constant_value: None,
        });
        assert_eq!(
            kind(check(&c, &VmSpec::hotspot9())),
            JvmErrorKind::ClassFormatError
        );
    }
}
