//! VM policy profiles — the knobs in which the five tested JVMs differ.
//!
//! Each knob is grounded in a behavior the paper documents (§1, §3.3
//! Problems 1–4); see `DESIGN.md` §5 for the mapping. One startup engine
//! parameterised by a [`VmSpec`] plays the role of the five JVM binaries in
//! Table 3.

use std::fmt;

/// Which vendor's implementation style a profile models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Vendor {
    /// Oracle/OpenJDK HotSpot.
    HotSpot,
    /// IBM J9.
    J9,
    /// GNU GIJ (the libgcj interpreter).
    Gij,
}

impl fmt::Display for Vendor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Vendor::HotSpot => "HotSpot",
            Vendor::J9 => "J9",
            Vendor::Gij => "GIJ",
        })
    }
}

/// Which generation of the bootstrap class library the VM ships with.
///
/// Drives the environment-induced discrepancies of the paper's preliminary
/// study (§1): classes present/absent/final differ between generations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum JreGeneration {
    /// Java 5-era library (GIJ).
    Jre5,
    /// Java 7 library.
    Jre7,
    /// Java 8 library.
    Jre8,
    /// Java 9 (early-access) library.
    Jre9,
}

/// What error a VM reports when a class extends a `final` superclass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FinalSuperError {
    /// `VerifyError` (HotSpot's historical behavior, per the EnumEditor
    /// case in §1).
    Verify,
    /// `IncompatibleClassChangeError` (the JVMS-lettered behavior).
    IncompatibleClassChange,
}

/// A complete JVM policy profile.
///
/// Construct via the five presets ([`VmSpec::hotspot7`] …) or tweak fields
/// for ablation studies; every field is public and documented by the
/// discrepancy class it controls.
#[derive(Debug, Clone, PartialEq)]
pub struct VmSpec {
    /// Display name, e.g. `"HotSpot for Java 8"`.
    pub name: String,
    /// Vendor style.
    pub vendor: Vendor,
    /// Java platform version (7, 8, 9; 5 for GIJ).
    pub java_version: u8,
    /// Bootstrap library generation.
    pub jre: JreGeneration,
    /// Highest classfile major version accepted
    /// (`UnsupportedClassVersionError` above it).
    pub max_class_version: u16,
    /// Problem 1 — J9: a method *named* `<clinit>` must carry a `Code`
    /// attribute, whatever its flags; HotSpot treats a non-static
    /// `<clinit>` as an ordinary method "of no consequence".
    pub clinit_requires_code: bool,
    /// Problem 1 — HotSpot: skip method-flag validity checks entirely for
    /// methods named `<clinit>` (they are of no consequence).
    pub clinit_flags_exempt: bool,
    /// Problem 2 — J9 verifies a method only when it is first invoked;
    /// HotSpot and GIJ verify every method at link time.
    pub lazy_method_verification: bool,
    /// Problem 2 — GIJ flags a merge of initialized and uninitialized
    /// types as a `VerifyError`; HotSpot misses it.
    pub check_uninit_merge: bool,
    /// Problem 2 — GIJ rejects provably incompatible reference-argument
    /// passing (`String` where `Map` is declared); HotSpot assumes
    /// assignability for classes it has not loaded.
    pub check_param_cast: bool,
    /// Problem 3 — HotSpot resolves `throws`-clause classes during linking
    /// (exposing missing/internal classes); J9 and GIJ do not.
    pub resolve_throws_clauses: bool,
    /// Problem 3 — Java 9-style encapsulation: touching an internal
    /// (`sun.*`-like) library class raises `IllegalAccessError`.
    pub reject_internal_access: bool,
    /// Problem 4 — everyone but GIJ: an interface's superclass must be
    /// `java/lang/Object`.
    pub interface_must_extend_object: bool,
    /// Problem 4 — everyone but GIJ: interface methods must be public
    /// abstract; interface fields public static final.
    pub interface_members_must_be_public: bool,
    /// Problem 4 — GIJ only: an interface carrying a `main` method may be
    /// launched.
    pub interface_main_invocable: bool,
    /// Problem 4 — everyone but GIJ: `<init>` must not be static, final,
    /// synchronized, native, or abstract, and must return `void`.
    pub strict_init_signature: bool,
    /// Problem 4 — GIJ accepts a class declaring duplicate fields.
    pub allow_duplicate_fields: bool,
    /// §1 — J9's verifier demands exactly matching stack shapes at merge
    /// points ("stack shape inconsistent"); others accept mergeable frames.
    pub strict_stack_shape_merge: bool,
    /// Error kind reported when extending a `final` class.
    pub final_super_error: FinalSuperError,
    /// §3.3 — J9/GIJ report a `ClassFormatError` for an abstract method in
    /// a non-abstract class at load time; HotSpot defers.
    pub reject_abstract_in_concrete: bool,
    /// Interpreter step budget (keeps differential runs deterministic).
    pub step_budget: u64,
}

impl VmSpec {
    /// HotSpot for Java 7 (Table 3).
    pub fn hotspot7() -> Self {
        VmSpec {
            name: "HotSpot for Java 7".into(),
            java_version: 7,
            jre: JreGeneration::Jre7,
            max_class_version: 51,
            ..Self::hotspot_base()
        }
    }

    /// HotSpot for Java 8 (Table 3).
    pub fn hotspot8() -> Self {
        VmSpec {
            name: "HotSpot for Java 8".into(),
            java_version: 8,
            jre: JreGeneration::Jre8,
            max_class_version: 52,
            ..Self::hotspot_base()
        }
    }

    /// HotSpot for Java 9 — the paper's reference JVM (coverage source).
    pub fn hotspot9() -> Self {
        VmSpec {
            name: "HotSpot for Java 9".into(),
            java_version: 9,
            jre: JreGeneration::Jre9,
            max_class_version: 53,
            reject_internal_access: true,
            ..Self::hotspot_base()
        }
    }

    /// IBM J9 for SDK 8 (Table 3).
    pub fn j9() -> Self {
        VmSpec {
            name: "J9 for IBM SDK8".into(),
            vendor: Vendor::J9,
            java_version: 8,
            jre: JreGeneration::Jre8,
            max_class_version: 52,
            clinit_requires_code: true,
            clinit_flags_exempt: false,
            lazy_method_verification: true,
            resolve_throws_clauses: false,
            strict_stack_shape_merge: true,
            reject_abstract_in_concrete: true,
            final_super_error: FinalSuperError::IncompatibleClassChange,
            ..Self::hotspot_base()
        }
    }

    /// GNU GIJ 5.1.0 (Table 3) — lenient loader, occasionally stricter
    /// verifier.
    pub fn gij() -> Self {
        VmSpec {
            name: "GIJ 5.1.0".into(),
            vendor: Vendor::Gij,
            java_version: 5,
            jre: JreGeneration::Jre5,
            // GIJ processes version 51 classes despite conforming to 1.5.
            max_class_version: 51,
            clinit_requires_code: false,
            clinit_flags_exempt: true,
            lazy_method_verification: false,
            check_uninit_merge: true,
            check_param_cast: true,
            resolve_throws_clauses: false,
            reject_internal_access: false,
            interface_must_extend_object: false,
            interface_members_must_be_public: false,
            interface_main_invocable: true,
            strict_init_signature: false,
            allow_duplicate_fields: true,
            strict_stack_shape_merge: false,
            reject_abstract_in_concrete: true,
            final_super_error: FinalSuperError::IncompatibleClassChange,
            ..Self::hotspot_base()
        }
    }

    fn hotspot_base() -> Self {
        VmSpec {
            name: "HotSpot".into(),
            vendor: Vendor::HotSpot,
            java_version: 9,
            jre: JreGeneration::Jre9,
            max_class_version: 53,
            clinit_requires_code: false,
            clinit_flags_exempt: true,
            lazy_method_verification: false,
            check_uninit_merge: false,
            check_param_cast: false,
            resolve_throws_clauses: true,
            reject_internal_access: false,
            interface_must_extend_object: true,
            interface_members_must_be_public: true,
            interface_main_invocable: false,
            strict_init_signature: true,
            allow_duplicate_fields: false,
            strict_stack_shape_merge: false,
            final_super_error: FinalSuperError::Verify,
            reject_abstract_in_concrete: false,
            step_budget: 200_000,
        }
    }

    /// The five JVMs of Table 3, in the paper's column order:
    /// HotSpot 7, HotSpot 8, HotSpot 9, J9, GIJ.
    pub fn all_five() -> Vec<VmSpec> {
        vec![
            VmSpec::hotspot7(),
            VmSpec::hotspot8(),
            VmSpec::hotspot9(),
            VmSpec::j9(),
            VmSpec::gij(),
        ]
    }
}

impl fmt::Display for VmSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_profiles_in_table3_order() {
        let all = VmSpec::all_five();
        assert_eq!(all.len(), 5);
        assert_eq!(all[0].java_version, 7);
        assert_eq!(all[2].name, "HotSpot for Java 9");
        assert_eq!(all[3].vendor, Vendor::J9);
        assert_eq!(all[4].vendor, Vendor::Gij);
    }

    #[test]
    fn knobs_encode_documented_differences() {
        let hs8 = VmSpec::hotspot8();
        let j9 = VmSpec::j9();
        let gij = VmSpec::gij();
        // Problem 1
        assert!(!hs8.clinit_requires_code);
        assert!(j9.clinit_requires_code);
        // Problem 2
        assert!(j9.lazy_method_verification);
        assert!(!hs8.lazy_method_verification);
        assert!(gij.check_uninit_merge && !hs8.check_uninit_merge);
        // Problem 3
        assert!(VmSpec::hotspot9().reject_internal_access);
        assert!(!j9.reject_internal_access);
        // Problem 4
        assert!(!gij.interface_must_extend_object);
        assert!(gij.interface_main_invocable);
        assert!(gij.allow_duplicate_fields);
    }

    #[test]
    fn version_gates() {
        assert_eq!(VmSpec::hotspot7().max_class_version, 51);
        assert_eq!(VmSpec::hotspot8().max_class_version, 52);
        assert_eq!(VmSpec::gij().max_class_version, 51);
    }
}
