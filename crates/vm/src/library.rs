//! The bootstrap class library — the "execution-related environment `e`" of
//! the paper's formalization.
//!
//! Each [`VmSpec`](crate::spec::VmSpec) carries a
//! [`JreGeneration`]; the library contents differ
//! across generations exactly the way the paper's preliminary study exploits:
//! classes are added, removed, or become `final` between JRE releases, so the
//! *same* classfile meets a different environment on each VM.

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

use classfuzz_classfile::{ClassAccess, MethodAccess};

use crate::spec::JreGeneration;

/// What the interpreter does when a library method is invoked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Behavior {
    /// Do nothing; return the descriptor's default value (0/null/void).
    Default,
    /// `PrintStream.println(String)` — append a line to captured stdout.
    PrintlnStr,
    /// `PrintStream.println(I)`/`(J)`/`(Z)`/`(C)` — print the numeric top.
    PrintlnValue,
    /// `PrintStream.println()` — print an empty line.
    PrintlnEmpty,
    /// `Object.<init>` and other empty constructors.
    InitNop,
    /// `Throwable.<init>(String)` — store the message on the receiver.
    ThrowableInitMsg,
    /// `Throwable.getMessage()`.
    ThrowableGetMessage,
    /// `String.length()`.
    StringLength,
    /// `String.concat(String)`.
    StringConcat,
    /// `String.equals(Object)`.
    StringEquals,
    /// `String.hashCode()`.
    StringHashCode,
    /// `StringBuilder.append(...)` returning the receiver.
    SbAppend,
    /// `StringBuilder.toString()`.
    SbToString,
    /// `Math.abs(I)`.
    MathAbs,
    /// `Math.max(II)`.
    MathMax,
    /// `Math.min(II)`.
    MathMin,
    /// `Integer.parseInt(String)`.
    ParseInt,
    /// `Object.hashCode()`.
    ObjHashCode,
    /// `Object.equals(Object)` — reference equality.
    ObjEquals,
    /// `Object.toString()`.
    ObjToString,
}

/// A method of a library class.
#[derive(Debug, Clone)]
pub struct LibMethod {
    /// Method name.
    pub name: &'static str,
    /// Descriptor text.
    pub desc: &'static str,
    /// Access flags.
    pub access: MethodAccess,
    /// Interpreter semantics.
    pub behavior: Behavior,
}

/// A field of a library class.
#[derive(Debug, Clone)]
pub struct LibField {
    /// Field name.
    pub name: &'static str,
    /// Descriptor text.
    pub desc: &'static str,
}

/// One class of the bootstrap library.
#[derive(Debug, Clone)]
pub struct LibClass {
    /// Binary name.
    pub name: &'static str,
    /// Access flags (drives finality/interface checks against user code).
    pub access: ClassAccess,
    /// Superclass binary name (`None` only for `java/lang/Object`).
    pub super_class: Option<&'static str>,
    /// Implemented/extended interfaces.
    pub interfaces: Vec<&'static str>,
    /// Marked internal (`sun.*`-style); Java 9 encapsulation rejects access.
    pub internal: bool,
    /// Methods with interpreter semantics.
    pub methods: Vec<LibMethod>,
    /// Static fields readable by user code.
    pub static_fields: Vec<LibField>,
}

impl LibClass {
    /// Whether the class is declared `final` in this library build.
    pub fn is_final(&self) -> bool {
        self.access.contains(ClassAccess::FINAL)
    }

    /// Whether this is an interface.
    pub fn is_interface(&self) -> bool {
        self.access.contains(ClassAccess::INTERFACE)
    }

    /// Finds a method by name and descriptor.
    pub fn find_method(&self, name: &str, desc: &str) -> Option<&LibMethod> {
        self.methods
            .iter()
            .find(|m| m.name == name && m.desc == desc)
    }
}

fn class(name: &'static str, super_class: Option<&'static str>, access: ClassAccess) -> LibClass {
    LibClass {
        name,
        access,
        super_class,
        interfaces: Vec::new(),
        internal: false,
        methods: Vec::new(),
        static_fields: Vec::new(),
    }
}

fn m(name: &'static str, desc: &'static str, behavior: Behavior) -> LibMethod {
    LibMethod {
        name,
        desc,
        access: MethodAccess::PUBLIC,
        behavior,
    }
}

fn m_static(name: &'static str, desc: &'static str, behavior: Behavior) -> LibMethod {
    LibMethod {
        name,
        desc,
        access: MethodAccess::PUBLIC | MethodAccess::STATIC,
        behavior,
    }
}

fn iface(name: &'static str) -> LibClass {
    class(
        name,
        Some("java/lang/Object"),
        ClassAccess::PUBLIC | ClassAccess::INTERFACE | ClassAccess::ABSTRACT,
    )
}

fn throwable_subclass(name: &'static str, super_class: &'static str) -> LibClass {
    let mut c = class(name, Some(super_class), ClassAccess::PUBLIC);
    c.methods.push(m("<init>", "()V", Behavior::InitNop));
    c.methods.push(m(
        "<init>",
        "(Ljava/lang/String;)V",
        Behavior::ThrowableInitMsg,
    ));
    c
}

/// Builds the bootstrap library for one JRE generation.
///
/// Generation differences (each mirrors a real-world discrepancy source):
///
/// * `jre/ext/LegacySupport` exists only in JRE 5/7 (removed later →
///   `NoClassDefFoundError` on newer VMs);
/// * `jre/util/StreamKit` exists only in JRE 8/9 (added in 8 → missing on
///   older VMs);
/// * `jre/beans/AbstractEditor` becomes **final** in JRE 8 (the
///   `EnumEditor` case: subclasses verify on 7 but not on 8/9);
/// * `sun/internal/PiscesKit` and `sun/misc/Unsafe` are internal (Java 9
///   encapsulation rejects touching them).
pub fn bootstrap_library(gen: JreGeneration) -> BTreeMap<String, LibClass> {
    let mut lib: BTreeMap<String, LibClass> = BTreeMap::new();
    let mut add = |c: LibClass| {
        lib.insert(c.name.to_string(), c);
    };

    let mut object = class("java/lang/Object", None, ClassAccess::PUBLIC);
    object.methods.extend([
        m("<init>", "()V", Behavior::InitNop),
        m("toString", "()Ljava/lang/String;", Behavior::ObjToString),
        m("hashCode", "()I", Behavior::ObjHashCode),
        m("equals", "(Ljava/lang/Object;)Z", Behavior::ObjEquals),
        m("getClass", "()Ljava/lang/Class;", Behavior::Default),
    ]);
    add(object);

    let mut string = class(
        "java/lang/String",
        Some("java/lang/Object"),
        ClassAccess::PUBLIC | ClassAccess::FINAL,
    );
    string.interfaces = vec!["java/lang/Comparable", "java/io/Serializable"];
    string.methods.extend([
        m("length", "()I", Behavior::StringLength),
        m(
            "concat",
            "(Ljava/lang/String;)Ljava/lang/String;",
            Behavior::StringConcat,
        ),
        m("equals", "(Ljava/lang/Object;)Z", Behavior::StringEquals),
        m("hashCode", "()I", Behavior::StringHashCode),
    ]);
    add(string);

    let mut system = class(
        "java/lang/System",
        Some("java/lang/Object"),
        ClassAccess::PUBLIC | ClassAccess::FINAL,
    );
    system.static_fields.push(LibField {
        name: "out",
        desc: "Ljava/io/PrintStream;",
    });
    system.static_fields.push(LibField {
        name: "err",
        desc: "Ljava/io/PrintStream;",
    });
    add(system);

    let mut print_stream = class(
        "java/io/PrintStream",
        Some("java/lang/Object"),
        ClassAccess::PUBLIC,
    );
    print_stream.methods.extend([
        m("println", "(Ljava/lang/String;)V", Behavior::PrintlnStr),
        m("println", "(I)V", Behavior::PrintlnValue),
        m("println", "(J)V", Behavior::PrintlnValue),
        m("println", "(Z)V", Behavior::PrintlnValue),
        m("println", "(C)V", Behavior::PrintlnValue),
        m("println", "(D)V", Behavior::PrintlnValue),
        m("println", "()V", Behavior::PrintlnEmpty),
        m("print", "(Ljava/lang/String;)V", Behavior::PrintlnStr),
        m("println", "(Ljava/lang/Object;)V", Behavior::PrintlnValue),
    ]);
    add(print_stream);

    let mut sb = class(
        "java/lang/StringBuilder",
        Some("java/lang/Object"),
        ClassAccess::PUBLIC,
    );
    sb.methods.extend([
        m("<init>", "()V", Behavior::InitNop),
        m(
            "append",
            "(Ljava/lang/String;)Ljava/lang/StringBuilder;",
            Behavior::SbAppend,
        ),
        m("append", "(I)Ljava/lang/StringBuilder;", Behavior::SbAppend),
        m("append", "(J)Ljava/lang/StringBuilder;", Behavior::SbAppend),
        m("append", "(Z)Ljava/lang/StringBuilder;", Behavior::SbAppend),
        m("toString", "()Ljava/lang/String;", Behavior::SbToString),
    ]);
    add(sb);

    let mut math = class(
        "java/lang/Math",
        Some("java/lang/Object"),
        ClassAccess::PUBLIC | ClassAccess::FINAL,
    );
    math.methods.extend([
        m_static("abs", "(I)I", Behavior::MathAbs),
        m_static("max", "(II)I", Behavior::MathMax),
        m_static("min", "(II)I", Behavior::MathMin),
    ]);
    add(math);

    let mut integer = class(
        "java/lang/Integer",
        Some("java/lang/Number"),
        ClassAccess::PUBLIC | ClassAccess::FINAL,
    );
    integer.methods.push(m_static(
        "parseInt",
        "(Ljava/lang/String;)I",
        Behavior::ParseInt,
    ));
    add(integer);
    add(class(
        "java/lang/Number",
        Some("java/lang/Object"),
        ClassAccess::PUBLIC | ClassAccess::ABSTRACT,
    ));
    add(class(
        "java/lang/Class",
        Some("java/lang/Object"),
        ClassAccess::PUBLIC | ClassAccess::FINAL,
    ));
    add(class(
        "java/lang/Enum",
        Some("java/lang/Object"),
        ClassAccess::PUBLIC | ClassAccess::ABSTRACT,
    ));

    let mut thread = class(
        "java/lang/Thread",
        Some("java/lang/Object"),
        ClassAccess::PUBLIC,
    );
    thread.interfaces = vec!["java/lang/Runnable"];
    thread.methods.extend([
        m("<init>", "()V", Behavior::InitNop),
        m("start", "()V", Behavior::Default),
        m("run", "()V", Behavior::Default),
    ]);
    add(thread);

    // Throwable hierarchy.
    let mut throwable = class(
        "java/lang/Throwable",
        Some("java/lang/Object"),
        ClassAccess::PUBLIC,
    );
    throwable.methods.extend([
        m("<init>", "()V", Behavior::InitNop),
        m(
            "<init>",
            "(Ljava/lang/String;)V",
            Behavior::ThrowableInitMsg,
        ),
        m(
            "getMessage",
            "()Ljava/lang/String;",
            Behavior::ThrowableGetMessage,
        ),
    ]);
    add(throwable);
    add(throwable_subclass(
        "java/lang/Exception",
        "java/lang/Throwable",
    ));
    add(throwable_subclass(
        "java/lang/RuntimeException",
        "java/lang/Exception",
    ));
    add(throwable_subclass(
        "java/lang/ArithmeticException",
        "java/lang/RuntimeException",
    ));
    add(throwable_subclass(
        "java/lang/NullPointerException",
        "java/lang/RuntimeException",
    ));
    add(throwable_subclass(
        "java/lang/ClassCastException",
        "java/lang/RuntimeException",
    ));
    add(throwable_subclass(
        "java/lang/IllegalArgumentException",
        "java/lang/RuntimeException",
    ));
    add(throwable_subclass(
        "java/lang/IllegalStateException",
        "java/lang/RuntimeException",
    ));
    add(throwable_subclass(
        "java/lang/IndexOutOfBoundsException",
        "java/lang/RuntimeException",
    ));
    add(throwable_subclass(
        "java/lang/ArrayIndexOutOfBoundsException",
        "java/lang/IndexOutOfBoundsException",
    ));
    add(throwable_subclass(
        "java/lang/NegativeArraySizeException",
        "java/lang/RuntimeException",
    ));
    add(throwable_subclass("java/lang/Error", "java/lang/Throwable"));
    add(throwable_subclass(
        "java/lang/LinkageError",
        "java/lang/Error",
    ));
    add(throwable_subclass(
        "java/lang/VerifyError",
        "java/lang/LinkageError",
    ));
    add(throwable_subclass(
        "java/lang/ClassFormatError",
        "java/lang/LinkageError",
    ));
    add(throwable_subclass(
        "java/io/IOException",
        "java/lang/Exception",
    ));
    add(throwable_subclass(
        "java/io/FileNotFoundException",
        "java/io/IOException",
    ));

    // Interfaces.
    let mut runnable = iface("java/lang/Runnable");
    runnable.methods.push(LibMethod {
        name: "run",
        desc: "()V",
        access: MethodAccess::PUBLIC | MethodAccess::ABSTRACT,
        behavior: Behavior::Default,
    });
    add(runnable);
    add(iface("java/lang/Comparable"));
    add(iface("java/lang/Cloneable"));
    add(iface("java/io/Serializable"));
    let mut privileged = iface("java/security/PrivilegedAction");
    privileged.methods.push(LibMethod {
        name: "run",
        desc: "()Ljava/lang/Object;",
        access: MethodAccess::PUBLIC | MethodAccess::ABSTRACT,
        behavior: Behavior::Default,
    });
    add(privileged);
    add(iface("java/util/Map"));
    add(iface("java/util/Iterator"));
    add(iface("java/lang/Iterable"));
    add(iface("java/util/Enumeration"));

    let mut abstract_map = class(
        "java/util/AbstractMap",
        Some("java/lang/Object"),
        ClassAccess::PUBLIC | ClassAccess::ABSTRACT,
    );
    abstract_map.interfaces = vec!["java/util/Map"];
    add(abstract_map);
    let mut hash_map = class(
        "java/util/HashMap",
        Some("java/util/AbstractMap"),
        ClassAccess::PUBLIC,
    );
    hash_map.interfaces = vec!["java/util/Map"];
    hash_map.methods.push(m("<init>", "()V", Behavior::InitNop));
    add(hash_map);
    let mut bool_cls = class(
        "java/lang/Boolean",
        Some("java/lang/Object"),
        ClassAccess::PUBLIC | ClassAccess::FINAL,
    );
    bool_cls.methods.push(m_static(
        "getBoolean",
        "(Ljava/lang/String;)Z",
        Behavior::Default,
    ));
    add(bool_cls);

    // --- Generation-gated classes -------------------------------------

    if matches!(gen, JreGeneration::Jre5 | JreGeneration::Jre7) {
        let mut legacy = class(
            "jre/ext/LegacySupport",
            Some("java/lang/Object"),
            ClassAccess::PUBLIC,
        );
        legacy
            .methods
            .push(m_static("status", "()I", Behavior::Default));
        legacy.methods.push(m("<init>", "()V", Behavior::InitNop));
        add(legacy);
    }
    if matches!(gen, JreGeneration::Jre8 | JreGeneration::Jre9) {
        let mut kit = class(
            "jre/util/StreamKit",
            Some("java/lang/Object"),
            ClassAccess::PUBLIC,
        );
        kit.methods
            .push(m_static("count", "()I", Behavior::Default));
        kit.methods.push(m("<init>", "()V", Behavior::InitNop));
        add(kit);
    }

    // The EnumEditor shape: AbstractEditor is open through JRE 7, final
    // afterwards, so user classes extending it diverge across generations.
    let editor_access = if matches!(gen, JreGeneration::Jre8 | JreGeneration::Jre9) {
        ClassAccess::PUBLIC | ClassAccess::FINAL
    } else {
        ClassAccess::PUBLIC
    };
    let mut abstract_editor = class(
        "jre/beans/AbstractEditor",
        Some("java/lang/Object"),
        editor_access,
    );
    abstract_editor
        .methods
        .push(m("<init>", "()V", Behavior::InitNop));
    add(abstract_editor);

    // Internal (sun.*-style) classes: present everywhere, but Java 9
    // encapsulation makes touching them an IllegalAccessError.
    let mut pisces = class(
        "sun/internal/PiscesKit",
        Some("java/lang/Object"),
        ClassAccess::PUBLIC,
    );
    pisces.internal = true;
    pisces.methods.push(m("<init>", "()V", Behavior::InitNop));
    add(pisces);
    let mut pisces2 = throwable_subclass("sun/internal/PiscesKit$2", "java/lang/Exception");
    pisces2.internal = true;
    add(pisces2);
    let mut unsafe_cls = class(
        "sun/misc/Unsafe",
        Some("java/lang/Object"),
        ClassAccess::PUBLIC | ClassAccess::FINAL,
    );
    unsafe_cls.internal = true;
    add(unsafe_cls);

    lib
}

/// The process-wide cache slot for one generation's library.
fn cache_slot(gen: JreGeneration) -> &'static OnceLock<Arc<BTreeMap<String, LibClass>>> {
    static JRE5: OnceLock<Arc<BTreeMap<String, LibClass>>> = OnceLock::new();
    static JRE7: OnceLock<Arc<BTreeMap<String, LibClass>>> = OnceLock::new();
    static JRE8: OnceLock<Arc<BTreeMap<String, LibClass>>> = OnceLock::new();
    static JRE9: OnceLock<Arc<BTreeMap<String, LibClass>>> = OnceLock::new();
    match gen {
        JreGeneration::Jre5 => &JRE5,
        JreGeneration::Jre7 => &JRE7,
        JreGeneration::Jre8 => &JRE8,
        JreGeneration::Jre9 => &JRE9,
    }
}

/// The shared bootstrap library for one JRE generation, built at most once
/// per process.
///
/// [`bootstrap_library`] is a pure function of its generation, and the
/// library is immutable once built, so every [`World`](crate::World) of a
/// generation can hold the same `Arc` instead of rebuilding the whole
/// `BTreeMap` per VM run — the dominant constant-factor cost of the old
/// startup path (see DESIGN.md, "Share-everything execution pipeline").
pub fn shared_library(gen: JreGeneration) -> Arc<BTreeMap<String, LibClass>> {
    cache_slot(gen)
        .get_or_init(|| Arc::new(bootstrap_library(gen)))
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_classes_exist_in_every_generation() {
        for gen in [
            JreGeneration::Jre5,
            JreGeneration::Jre7,
            JreGeneration::Jre8,
            JreGeneration::Jre9,
        ] {
            let lib = bootstrap_library(gen);
            for name in [
                "java/lang/Object",
                "java/lang/String",
                "java/lang/System",
                "java/io/PrintStream",
                "java/lang/Throwable",
            ] {
                assert!(lib.contains_key(name), "{name} missing in {gen:?}");
            }
        }
    }

    #[test]
    fn generation_gated_availability() {
        let jre7 = bootstrap_library(JreGeneration::Jre7);
        let jre8 = bootstrap_library(JreGeneration::Jre8);
        assert!(jre7.contains_key("jre/ext/LegacySupport"));
        assert!(!jre8.contains_key("jre/ext/LegacySupport"));
        assert!(!jre7.contains_key("jre/util/StreamKit"));
        assert!(jre8.contains_key("jre/util/StreamKit"));
    }

    #[test]
    fn abstract_editor_finality_flips_at_jre8() {
        let jre7 = bootstrap_library(JreGeneration::Jre7);
        let jre8 = bootstrap_library(JreGeneration::Jre8);
        assert!(!jre7["jre/beans/AbstractEditor"].is_final());
        assert!(jre8["jre/beans/AbstractEditor"].is_final());
    }

    #[test]
    fn internal_marking() {
        let lib = bootstrap_library(JreGeneration::Jre9);
        assert!(lib["sun/misc/Unsafe"].internal);
        assert!(lib["sun/internal/PiscesKit$2"].internal);
        assert!(!lib["java/lang/String"].internal);
    }

    #[test]
    fn shared_library_is_cached_per_generation() {
        let a = shared_library(JreGeneration::Jre8);
        let b = shared_library(JreGeneration::Jre8);
        assert!(Arc::ptr_eq(&a, &b), "same generation must share one build");
        let other = shared_library(JreGeneration::Jre9);
        assert!(!Arc::ptr_eq(&a, &other), "generations are distinct builds");
        // The cached build is the plain builder's output, verbatim.
        let fresh = bootstrap_library(JreGeneration::Jre8);
        assert_eq!(a.len(), fresh.len());
        assert!(a.keys().eq(fresh.keys()));
    }

    #[test]
    fn method_lookup() {
        let lib = bootstrap_library(JreGeneration::Jre9);
        let ps = &lib["java/io/PrintStream"];
        assert!(ps.find_method("println", "(Ljava/lang/String;)V").is_some());
        assert!(ps.find_method("println", "(F)V").is_none());
        assert!(lib["java/lang/String"].is_final());
        assert!(lib["java/util/Map"].is_interface());
    }
}
