//! The JVM startup pipeline: loading → linking → initialization →
//! invocation (Table 1), producing one [`Outcome`] per run.
//!
//! Every run is fault-contained: a panic anywhere in the parser, linker,
//! verifier, or interpreter is caught (see [`crate::containment`]) and
//! reported as [`Outcome::Crashed`] carrying the startup phase the VM had
//! reached, instead of unwinding into — and killing — the campaign engine.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::Arc;

use classfuzz_classfile::{ClassAccess, ClassFile, MethodAccess};
use classfuzz_coverage::TraceFile;

use crate::containment::run_contained;
use crate::cov::Cov;
use crate::interp::{ExecError, Machine, RtValue};
use crate::library::{bootstrap_library, shared_library, LibClass};
use crate::outcome::{JvmErrorKind, Outcome, Phase};
use crate::spec::VmSpec;
use crate::world::{UserClass, World};
use crate::{linker, loader, probe, probe_branch, verifier};

/// The result of one startup run: the observable outcome plus (for the
/// reference VM) the coverage tracefile.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionResult {
    /// The observable behavior `r = jvm(e, c, i)`.
    pub outcome: Outcome,
    /// Coverage of the VM's classfile-processing code, when collected.
    pub trace: Option<TraceFile>,
}

/// A classfile decoded exactly once and shared across every profile that
/// runs it: parsing (and the [`UserClass::summarize`] projection) is
/// profile-independent, so the reference trace run and all five harness
/// profiles can consume the same `PreparsedClass`. All profile-*dependent*
/// policy lives downstream, in the format check, linking, and verification.
///
/// A parse failure is part of the value: the deterministic
/// `ClassFormatError` message — or, for parser panics, the contained crash
/// detail — is captured once and replayed identically on every run.
#[derive(Debug, Clone)]
pub struct PreparsedClass {
    verdict: PreparseVerdict,
}

#[derive(Debug, Clone)]
enum PreparseVerdict {
    /// Parse + summary succeeded; shared by reference across runs.
    Parsed(Arc<UserClass>),
    /// Deterministic parse rejection: the `ClassFormatError` message.
    FormatError(String),
    /// The parser panicked; the contained, deterministic crash detail.
    Crashed(String),
}

impl PreparsedClass {
    /// The summarized class, when the bytes parsed successfully.
    pub fn class(&self) -> Option<&UserClass> {
        match &self.verdict {
            PreparseVerdict::Parsed(class) => Some(class),
            _ => None,
        }
    }

    /// Whether the bytes parsed cleanly.
    pub fn is_parsed(&self) -> bool {
        matches!(self.verdict, PreparseVerdict::Parsed(_))
    }
}

/// Decodes classfile bytes once, for use with [`Jvm::run_parsed`] and the
/// other `*_parsed` entry points. Parser panics are contained here and
/// replayed as crash verdicts, exactly as the per-run containment would
/// report them.
pub fn preparse(class_bytes: &[u8]) -> PreparsedClass {
    let verdict = match run_contained(|| match ClassFile::from_bytes(class_bytes) {
        Ok(cf) => Ok(Arc::new(UserClass::summarize(cf))),
        Err(e) => Err(e.to_string()),
    }) {
        Ok(Ok(class)) => PreparseVerdict::Parsed(class),
        Ok(Err(message)) => PreparseVerdict::FormatError(message),
        Err(detail) => PreparseVerdict::Crashed(detail),
    };
    PreparsedClass { verdict }
}

/// A JVM instance: one policy profile, ready to run classfiles.
///
/// Construction resolves the profile's bootstrap library from the
/// process-wide cache (see [`crate::library::shared_library`]), so each
/// run builds only the thin user-class overlay on top of a shared,
/// immutable base world.
///
/// # Examples
///
/// ```
/// use classfuzz_vm::{Jvm, VmSpec};
/// use classfuzz_jimple::{lower::lower_class, IrClass};
///
/// let class = IrClass::with_hello_main("demo/Hi", "Completed!");
/// let bytes = lower_class(&class).to_bytes();
/// let jvm = Jvm::new(VmSpec::hotspot8());
/// let result = jvm.run(&bytes);
/// assert_eq!(result.outcome.phase().code(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct Jvm {
    spec: VmSpec,
    /// The cached bootstrap library; `None` forces a cold rebuild per run
    /// (the pre-sharing behavior, kept measurable for the bench gate).
    base: Option<Arc<BTreeMap<String, LibClass>>>,
    /// Rebuild the per-method verification analysis on every verify
    /// instead of serving the class's shared [`AnalysisTable`]
    /// (crate::analysis::AnalysisTable) — the pre-analyze-once verifier,
    /// kept constructible for the `startup` bench baseline.
    cold_verify: bool,
}

impl Jvm {
    /// Creates a JVM with the given policy profile, sharing the
    /// process-wide bootstrap library for its JRE generation.
    pub fn new(spec: VmSpec) -> Jvm {
        let base = Some(shared_library(spec.jre));
        Jvm {
            spec,
            base,
            cold_verify: false,
        }
    }

    /// Creates a JVM that rebuilds its bootstrap library on every run and
    /// re-analyzes every method per verification — the old cold-world
    /// behavior. Only useful as the benchmark baseline; campaigns should
    /// use [`Jvm::new`].
    pub fn uncached(spec: VmSpec) -> Jvm {
        Jvm {
            spec,
            base: None,
            cold_verify: true,
        }
    }

    /// Creates a JVM that shares the bootstrap library but rebuilds the
    /// per-method verification analysis on every verify — isolating the
    /// analyze-once win from library caching, as the `startup` bench
    /// scenario's baseline arm.
    pub fn cold_verify(spec: VmSpec) -> Jvm {
        let base = Some(shared_library(spec.jre));
        Jvm {
            spec,
            base,
            cold_verify: true,
        }
    }

    /// The policy profile.
    pub fn spec(&self) -> &VmSpec {
        &self.spec
    }

    fn base_library(&self) -> Arc<BTreeMap<String, LibClass>> {
        match &self.base {
            Some(base) => Arc::clone(base),
            None => Arc::new(bootstrap_library(self.spec.jre)),
        }
    }

    /// Runs `java <class>` on the given classfile bytes, without coverage.
    pub fn run(&self, class_bytes: &[u8]) -> ExecutionResult {
        self.run_with_options(class_bytes, &[], false)
    }

    /// [`Jvm::run`] over an already-decoded classfile: the differential
    /// hot path, where one decode is shared by all profiles.
    pub fn run_parsed(&self, parsed: &PreparsedClass) -> ExecutionResult {
        self.run_parsed_with_options(parsed, &[], false)
    }

    /// Runs with coverage collection — the reference-JVM mode
    /// (`--enable-native-coverage` in the paper's setup).
    pub fn run_traced(&self, class_bytes: &[u8]) -> ExecutionResult {
        self.run_with_options(class_bytes, &[], true)
    }

    /// [`Jvm::run_traced`] over an already-decoded classfile.
    pub fn run_traced_parsed(&self, parsed: &PreparsedClass) -> ExecutionResult {
        self.run_parsed_with_options(parsed, &[], true)
    }

    /// Runs with coverage collection into a caller-owned reusable buffer:
    /// the campaign hot path. `scratch` is cleared, records the run's
    /// probes, and keeps its word-array allocation across calls; the
    /// returned result carries `trace: None` — the trace *is* `scratch`.
    pub fn run_traced_into(&self, class_bytes: &[u8], scratch: &mut TraceFile) -> ExecutionResult {
        self.run_traced_into_parsed(&preparse(class_bytes), scratch)
    }

    /// [`Jvm::run_traced_into`] over an already-decoded classfile.
    pub fn run_traced_into_parsed(
        &self,
        parsed: &PreparsedClass,
        scratch: &mut TraceFile,
    ) -> ExecutionResult {
        let mut cov = Cov::enabled_reusing(std::mem::take(scratch));
        let outcome = self.contained_startup(parsed, &[], &mut cov);
        *scratch = cov.into_trace().unwrap_or_default();
        ExecutionResult {
            outcome,
            trace: None,
        }
    }

    /// Full-control entry point: extra classpath entries and optional
    /// coverage.
    pub fn run_with_options(
        &self,
        class_bytes: &[u8],
        classpath: &[Vec<u8>],
        collect_coverage: bool,
    ) -> ExecutionResult {
        self.run_parsed_with_options(&preparse(class_bytes), classpath, collect_coverage)
    }

    /// Full-control entry point over an already-decoded classfile. Every
    /// byte-level entry point is a thin wrapper over this one, so the
    /// bytes path and the parsed path execute the identical pipeline —
    /// including the identical coverage-probe pattern.
    pub fn run_parsed_with_options(
        &self,
        parsed: &PreparsedClass,
        classpath: &[Vec<u8>],
        collect_coverage: bool,
    ) -> ExecutionResult {
        let mut cov = if collect_coverage {
            Cov::enabled()
        } else {
            Cov::disabled()
        };
        let outcome = self.contained_startup(parsed, classpath, &mut cov);
        ExecutionResult {
            outcome,
            trace: cov.into_trace(),
        }
    }

    /// Fault containment: `progress` tracks the deepest phase the pipeline
    /// entered, so a panic inside any stage becomes a deterministic crash
    /// verdict attributed to that phase. Coverage probes fired before the
    /// panic survive (the trace of a crashed run is its partial trace —
    /// itself deterministic).
    fn contained_startup(
        &self,
        parsed: &PreparsedClass,
        classpath: &[Vec<u8>],
        cov: &mut Cov,
    ) -> Outcome {
        let progress = Cell::new(Phase::Loading);
        match run_contained(|| self.startup(parsed, classpath, cov, &progress)) {
            Ok(outcome) => outcome,
            Err(detail) => Outcome::crashed(progress.get(), detail),
        }
    }

    fn startup(
        &self,
        parsed: &PreparsedClass,
        classpath: &[Vec<u8>],
        cov: &mut Cov,
        progress: &Cell<Phase>,
    ) -> Outcome {
        progress.set(Phase::Loading);
        probe!(cov);
        // --- Creation & loading: replay the (shared) parse verdict -----
        let main_class = match &parsed.verdict {
            PreparseVerdict::Parsed(class) => Arc::clone(class),
            PreparseVerdict::FormatError(message) => {
                probe!(cov);
                return Outcome::rejected(
                    Phase::Loading,
                    JvmErrorKind::ClassFormatError,
                    message.clone(),
                );
            }
            // A parser panic was contained at preparse time; replay it as
            // the loading-phase crash the per-run containment would have
            // reported (the entry probe above has fired, matching the
            // partial trace of the in-run panic).
            PreparseVerdict::Crashed(detail) => {
                return Outcome::crashed(Phase::Loading, detail.clone());
            }
        };
        let main_name = main_class.name.clone();
        let mut user_classes = vec![main_class];
        for extra in classpath {
            if let Ok(cf) = ClassFile::from_bytes(extra) {
                user_classes.push(Arc::new(UserClass::summarize(cf)));
            }
        }
        let world = World::with_library(self.base_library(), user_classes);
        // The main class was inserted first, but stay panic-free on the
        // lookup: a miss is a VM bug, reported as an internal error. The
        // borrow shares the overlay's `Arc` — no per-run classfile copy.
        let Some(main_class) = world.user_class(&main_name) else {
            return Outcome::rejected(
                Phase::Loading,
                JvmErrorKind::InternalError,
                format!("main class {main_name} lost during world construction"),
            );
        };

        // --- Creation & loading: format check --------------------------
        if let Err(outcome) = loader::format_check(main_class, &self.spec, cov) {
            return outcome;
        }

        // --- Linking: hierarchy, throws resolution ---------------------
        progress.set(Phase::Linking);
        if let Err(outcome) = linker::link_check(&world, main_class, &self.spec, cov) {
            return outcome;
        }

        // --- Linking: verification (eager VMs verify every method) -----
        if probe_branch!(cov, !self.spec.lazy_method_verification) {
            // Both arms run the same inner verifier (and fire the same
            // probes); `cold_verify` only selects whether the shared
            // analysis table is consulted.
            let verified = if self.cold_verify {
                verifier::verify_class_cold(&world, main_class, &self.spec, cov)
            } else {
                verifier::verify_class(&world, main_class, &self.spec, cov)
            };
            if let Err(outcome) = verified {
                return outcome;
            }
        }

        // --- Initialization: preparation + <clinit> --------------------
        progress.set(Phase::Initializing);
        let mut machine = Machine::new(&world, &self.spec);
        machine.prepare_statics(main_class);
        if let Some(clinit) = self.initializer_of(main_class) {
            probe!(cov);
            match machine.call_static(main_class, &clinit.0, &clinit.1, vec![], cov) {
                Ok(_) => {}
                Err(ExecError::Linkage { kind, message }) => {
                    // Linkage errors surfacing from lazy verification or
                    // resolution inside <clinit> are linking-phase errors.
                    return Outcome::rejected(linkage_phase(kind), kind, message);
                }
                Err(ExecError::Uncaught(t)) => {
                    return Outcome::rejected(
                        Phase::Initializing,
                        JvmErrorKind::ExceptionInInitializerError,
                        format!(
                            "Caught {}: {}",
                            t.class.replace('/', "."),
                            t.message.unwrap_or_default()
                        ),
                    );
                }
                Err(ExecError::BudgetExceeded) => {
                    return Outcome::rejected(
                        Phase::Initializing,
                        JvmErrorKind::ExecutionBudgetExceeded,
                        "<clinit> exceeded the step budget",
                    );
                }
            }
        }

        // --- Invocation: find and run main ------------------------------
        progress.set(Phase::Runtime);
        let is_interface = main_class.cf.access.contains(ClassAccess::INTERFACE);
        if probe_branch!(cov, is_interface && !self.spec.interface_main_invocable) {
            return Outcome::rejected(
                Phase::Runtime,
                JvmErrorKind::MainMethodNotFound,
                format!("{main_name} is an interface"),
            );
        }
        let main = main_class.find_method("main", "([Ljava/lang/String;)V");
        let main = match main {
            Some(m) if m.access.contains(MethodAccess::STATIC) && m.has_code => m.clone(),
            _ => {
                probe!(cov);
                return Outcome::rejected(
                    Phase::Runtime,
                    JvmErrorKind::MainMethodNotFound,
                    format!("Main method not found in class {main_name}"),
                );
            }
        };
        let args = vec![RtValue::Ref(None)]; // String[] args — we pass null
        let _ = main;
        match machine.call_static(main_class, "main", "([Ljava/lang/String;)V", args, cov) {
            Ok(_) => Outcome::Invoked {
                stdout: machine.stdout,
            },
            Err(ExecError::Linkage { kind, message }) => {
                Outcome::rejected(linkage_phase(kind), kind, message)
            }
            Err(ExecError::Uncaught(t)) => {
                let kind = runtime_kind(&t.class);
                Outcome::rejected(
                    Phase::Runtime,
                    kind,
                    format!(
                        "Exception in thread \"main\" {}: {}",
                        t.class.replace('/', "."),
                        t.message.unwrap_or_default()
                    ),
                )
            }
            Err(ExecError::BudgetExceeded) => Outcome::rejected(
                Phase::Runtime,
                JvmErrorKind::ExecutionBudgetExceeded,
                "main exceeded the step budget",
            ),
        }
    }

    /// The *actual* class-initialization method under this VM's rules:
    /// `<clinit>`, no arguments, with the static flag (version ≥ 51).
    /// Non-static `<clinit>`s are "of no consequence" here; whether they
    /// were already rejected at load time is the loader's policy.
    fn initializer_of(&self, class: &UserClass) -> Option<(String, String)> {
        class
            .methods
            .iter()
            .find(|m| {
                m.name == "<clinit>"
                    && m.access.contains(MethodAccess::STATIC)
                    && m.has_code
                    && m.desc_text == "()V"
            })
            .map(|m| (m.name.clone(), m.desc_text.clone()))
    }
}

/// Which phase a linkage error surfacing during execution belongs to, under
/// the paper's five-way simplification (§2.3).
fn linkage_phase(kind: JvmErrorKind) -> Phase {
    match kind {
        JvmErrorKind::VerifyError => Phase::Linking,
        JvmErrorKind::NoClassDefFoundError => Phase::Runtime,
        JvmErrorKind::ClassFormatError => Phase::Runtime,
        JvmErrorKind::IllegalAccessError
        | JvmErrorKind::NoSuchFieldError
        | JvmErrorKind::NoSuchMethodError
        | JvmErrorKind::AbstractMethodError
        | JvmErrorKind::InstantiationError
        | JvmErrorKind::IncompatibleClassChangeError
        | JvmErrorKind::UnsatisfiedLinkError
        | JvmErrorKind::ResolutionDepthExceeded => Phase::Runtime,
        _ => Phase::Runtime,
    }
}

fn runtime_kind(class: &str) -> JvmErrorKind {
    match class {
        "java/lang/ArithmeticException" => JvmErrorKind::ArithmeticException,
        "java/lang/NullPointerException" => JvmErrorKind::NullPointerException,
        "java/lang/ClassCastException" => JvmErrorKind::ClassCastException,
        "java/lang/ArrayIndexOutOfBoundsException" => JvmErrorKind::ArrayIndexOutOfBoundsException,
        "java/lang/NegativeArraySizeException" => JvmErrorKind::NegativeArraySizeException,
        "java/lang/StackOverflowError" => JvmErrorKind::StackOverflowError,
        _ => JvmErrorKind::UncaughtException,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use classfuzz_jimple::{lower::lower_class, IrClass, IrMethod};

    fn run_on(class: &IrClass, spec: VmSpec) -> Outcome {
        Jvm::new(spec).run(&lower_class(class).to_bytes()).outcome
    }

    #[test]
    fn hello_runs_on_all_five() {
        let class = IrClass::with_hello_main("ok/Hello", "Completed!");
        for spec in VmSpec::all_five() {
            let out = run_on(&class, spec.clone());
            match out {
                Outcome::Invoked { ref stdout } => {
                    assert_eq!(stdout, &vec!["Completed!".to_string()], "{}", spec.name)
                }
                other => panic!("{} rejected hello: {other}", spec.name),
            }
        }
    }

    #[test]
    fn figure2_clinit_discrepancy() {
        // HotSpot invokes normally (0); J9 reports ClassFormatError (1).
        let mut class = IrClass::with_hello_main("M1436188543", "Completed!");
        class.methods.push(IrMethod::abstract_method(
            classfuzz_classfile::MethodAccess::PUBLIC | classfuzz_classfile::MethodAccess::ABSTRACT,
            "<clinit>",
            vec![],
            None,
        ));
        assert_eq!(run_on(&class, VmSpec::hotspot8()).phase(), Phase::Invoked);
        let j9 = run_on(&class, VmSpec::j9());
        assert_eq!(j9.phase(), Phase::Loading);
        assert_eq!(j9.error().unwrap().kind, JvmErrorKind::ClassFormatError);
    }

    #[test]
    fn missing_main_is_runtime_rejection() {
        let class = IrClass::new("no/Main");
        let out = run_on(&class, VmSpec::hotspot9());
        assert_eq!(out.phase(), Phase::Runtime);
        assert_eq!(out.error().unwrap().kind, JvmErrorKind::MainMethodNotFound);
    }

    #[test]
    fn unparseable_bytes_rejected_at_loading() {
        let jvm = Jvm::new(VmSpec::hotspot9());
        let out = jvm.run(&[0xCA, 0xFE, 0xBA]).outcome;
        assert_eq!(out.phase(), Phase::Loading);
    }

    #[test]
    fn preparse_classifies_bytes() {
        let class = IrClass::with_hello_main("pp/Ok", "x");
        let good = preparse(&lower_class(&class).to_bytes());
        assert!(good.is_parsed());
        assert_eq!(good.class().unwrap().name, "pp/Ok");
        let bad = preparse(&[0xCA, 0xFE, 0xBA]);
        assert!(!bad.is_parsed());
        assert!(bad.class().is_none());
    }

    #[test]
    fn parsed_path_matches_bytes_path_including_traces() {
        let class = IrClass::with_hello_main("pp/Same", "Completed!");
        let bytes = lower_class(&class).to_bytes();
        let inputs: [&[u8]; 3] = [&bytes, &[0xCA, 0xFE, 0xBA], &bytes[..bytes.len() / 2]];
        for spec in VmSpec::all_five() {
            let jvm = Jvm::new(spec);
            for input in inputs {
                let parsed = preparse(input);
                assert_eq!(jvm.run(input), jvm.run_parsed(&parsed));
                assert_eq!(jvm.run_traced(input), jvm.run_traced_parsed(&parsed));
            }
        }
    }

    #[test]
    fn uncached_jvm_matches_cached() {
        let class = IrClass::with_hello_main("pp/Cold", "Completed!");
        let bytes = lower_class(&class).to_bytes();
        for spec in VmSpec::all_five() {
            let cached = Jvm::new(spec.clone());
            let cold = Jvm::uncached(spec);
            assert_eq!(cached.run_traced(&bytes), cold.run_traced(&bytes));
        }
    }

    #[test]
    fn reference_vm_produces_coverage() {
        let class = IrClass::with_hello_main("cov/T", "x");
        let jvm = Jvm::new(VmSpec::hotspot9());
        let result = jvm.run_traced(&lower_class(&class).to_bytes());
        let trace = result.trace.expect("trace collected");
        assert!(trace.stats().stmt > 10);
        assert!(trace.stats().br > 5);
    }

    #[test]
    fn different_classes_produce_different_coverage() {
        let a = IrClass::with_hello_main("cov/A", "x");
        let mut b = IrClass::with_hello_main("cov/B", "x");
        b.fields.push(classfuzz_jimple::IrField {
            access: classfuzz_classfile::FieldAccess::STATIC,
            name: "f".into(),
            ty: classfuzz_jimple::JType::Long,
            constant_value: None,
        });
        b.interfaces.push("java/lang/Runnable".into());
        let jvm = Jvm::new(VmSpec::hotspot9());
        let ta = jvm.run_traced(&lower_class(&a).to_bytes()).trace.unwrap();
        let tb = jvm.run_traced(&lower_class(&b).to_bytes()).trace.unwrap();
        assert_ne!(ta, tb);
    }

    #[test]
    fn clinit_exception_is_initialization_rejection() {
        use classfuzz_jimple::*;
        let mut class = IrClass::with_hello_main("init/Boom", "never");
        let mut body = Body::new();
        body.declare("e", JType::object("java/lang/RuntimeException"));
        body.stmts.push(Stmt::Assign {
            target: Target::Local("e".into()),
            value: Expr::New("java/lang/RuntimeException".into()),
        });
        body.stmts.push(Stmt::Invoke(InvokeExpr {
            kind: InvokeKind::Special,
            class: "java/lang/RuntimeException".into(),
            name: "<init>".into(),
            params: vec![],
            ret: None,
            receiver: Some(Value::local("e")),
            args: vec![],
        }));
        body.stmts.push(Stmt::Throw(Value::local("e")));
        class.methods.push(IrMethod {
            access: classfuzz_classfile::MethodAccess::STATIC,
            name: "<clinit>".into(),
            params: vec![],
            ret: None,
            exceptions: vec![],
            body: Some(body),
        });
        let out = run_on(&class, VmSpec::hotspot9());
        assert_eq!(out.phase(), Phase::Initializing);
        assert_eq!(
            out.error().unwrap().kind,
            JvmErrorKind::ExceptionInInitializerError
        );
    }

    #[test]
    fn lazy_verification_skips_broken_helper() {
        use classfuzz_jimple::*;
        // A broken helper method that is never invoked: eager VMs reject at
        // linking; lazy J9 runs the class normally (Problem 2).
        let mut class = IrClass::with_hello_main("lazy/H", "Completed!");
        let mut body = Body::new();
        body.declare("x", JType::string());
        body.stmts.push(Stmt::Assign {
            target: Target::Local("x".into()),
            value: Expr::Use(Value::int(1)), // istore into a String slot
        });
        body.stmts.push(Stmt::Assign {
            target: Target::Local("y".into()),
            value: Expr::Use(Value::local("x")), // aload of an Int slot
        });
        body.declare("y", JType::string());
        body.stmts.push(Stmt::Return(None));
        class.methods.push(IrMethod {
            access: classfuzz_classfile::MethodAccess::PUBLIC
                | classfuzz_classfile::MethodAccess::STATIC,
            name: "brokenHelper".into(),
            params: vec![],
            ret: None,
            exceptions: vec![],
            body: Some(body),
        });
        assert_eq!(run_on(&class, VmSpec::hotspot8()).phase(), Phase::Linking);
        assert_eq!(run_on(&class, VmSpec::j9()).phase(), Phase::Invoked);
    }

    #[test]
    fn gij_runs_interface_main_others_do_not() {
        use classfuzz_classfile::ClassAccess;
        let mut class = IrClass::with_hello_main("iface/Main", "Completed!");
        class.access = ClassAccess::PUBLIC | ClassAccess::INTERFACE | ClassAccess::ABSTRACT;
        // Interface with a static main: strict VMs reject the member flags
        // at loading; GIJ runs it (Problem 4).
        assert_eq!(run_on(&class, VmSpec::gij()).phase(), Phase::Invoked);
        let hs = run_on(&class, VmSpec::hotspot8());
        assert_ne!(hs.phase(), Phase::Invoked);
    }

    #[test]
    fn arithmetic_exception_at_runtime() {
        use classfuzz_jimple::*;
        let mut class = IrClass::new("rt/Div");
        let mut body = Body::new();
        body.declare("x", JType::Int);
        body.stmts.push(Stmt::Assign {
            target: Target::Local("x".into()),
            value: Expr::BinOp(BinOp::Div, JType::Int, Value::int(1), Value::int(0)),
        });
        body.stmts.push(Stmt::Return(None));
        class.methods.push(IrMethod {
            access: classfuzz_classfile::MethodAccess::PUBLIC
                | classfuzz_classfile::MethodAccess::STATIC,
            name: "main".into(),
            params: vec![JType::array(JType::string())],
            ret: None,
            exceptions: vec![],
            body: Some(body),
        });
        let out = run_on(&class, VmSpec::hotspot9());
        assert_eq!(out.phase(), Phase::Runtime);
        assert_eq!(out.error().unwrap().kind, JvmErrorKind::ArithmeticException);
    }
}
