//! Bytecode verification by type inference (JVMS §4.10.2), parameterised by
//! the policy knobs in which the paper's JVMs differ.
//!
//! The verifier runs a worklist dataflow over basic frames: each local slot
//! and stack slot carries a [`VType`]; instructions are abstract transfer
//! functions; frames merge at join points. Policy knobs:
//!
//! * `strict_stack_shape_merge` (J9) — merge demands *identical* stack
//!   shapes, reporting the "stack shape inconsistent" errors of §1;
//! * `check_uninit_merge` (GIJ) — merging initialized with uninitialized
//!   types is an error (HotSpot silently widens to `Top`);
//! * `check_param_cast` (GIJ) — reference arguments must be provably
//!   assignable (HotSpot assumes assignability for unloaded classes).
//!
//! Everything profile-invariant — instruction layout, branch/handler
//! target tables, descriptor parsing, constant-pool resolution — lives in
//! a [`MethodAnalysis`](crate::analysis::MethodAnalysis) built once per
//! method and shared across all five profiles through the `AnalysisTable`
//! on [`UserClass`]; the dataflow here consumes those facts by reference
//! and applies only the [`VmSpec`]-specific policy. The `*_cold` entry
//! points rebuild the analysis per call (the bench baseline); both paths
//! run the same inner functions, so they fire the exact same coverage
//! probes and produce bit-identical traces.

use std::collections::VecDeque;
use std::sync::Arc;

use classfuzz_classfile::{ConstIndex, FieldType, MethodAccess, Opcode};

use crate::analysis::{
    analyze_method, vtype_of, ACall, AClass, AField, AInsn, AInvoke, ALdc, ALdc2, ASig, ATarget,
    MethodAnalysis,
};
pub use crate::analysis::{InvokeShape, VType};
use crate::cov::Cov;
use crate::outcome::{JvmErrorKind, Outcome, Phase};
use crate::spec::VmSpec;
use crate::world::{MethodSummary, UserClass, World};
use crate::{probe, probe_branch};

/// A dataflow frame: the abstract state at one instruction.
#[derive(Debug, PartialEq)]
struct Frame {
    locals: Vec<VType>,
    stack: Vec<VType>,
}

impl Clone for Frame {
    fn clone(&self) -> Frame {
        Frame {
            locals: self.locals.clone(),
            stack: self.stack.clone(),
        }
    }

    // The worklist loop re-materializes the in-frame into one scratch
    // frame per iteration; delegating to `Vec::clone_from` reuses the
    // scratch buffers instead of reallocating per step.
    fn clone_from(&mut self, source: &Frame) {
        self.locals.clone_from(&source.locals);
        self.stack.clone_from(&source.stack);
    }
}

/// An in-flight verification failure; converted to a linking-phase
/// outcome at the boundary. `Internal` marks verifier bookkeeping bugs
/// (e.g. a worklist index without an in-frame) and surfaces as
/// `InternalError` instead of blaming the candidate with a `VerifyError`.
#[derive(Debug, Clone)]
enum VerifyFail {
    Reject(String),
    Internal(String),
}

type VResult<T> = Result<T, VerifyFail>;

fn fail<T>(msg: impl Into<String>) -> VResult<T> {
    Err(VerifyFail::Reject(msg.into()))
}

fn internal<T>(msg: impl Into<String>) -> VResult<T> {
    Err(VerifyFail::Internal(msg.into()))
}

/// Verifies every method of `class` that carries code (eager linking),
/// consuming the shared per-class analysis table.
///
/// # Errors
///
/// Returns a linking-phase `VerifyError` outcome naming the first offending
/// method.
pub fn verify_class(
    world: &World,
    class: &UserClass,
    spec: &VmSpec,
    cov: &mut Cov,
) -> Result<(), Outcome> {
    verify_class_with(world, class, spec, cov, false)
}

/// [`verify_class`] with the analysis rebuilt per method call — the
/// pre-sharing baseline kept constructible for the bench gate. Same inner
/// code, same probes, bit-identical traces.
///
/// # Errors
///
/// Returns a linking-phase `VerifyError` outcome naming the first offending
/// method.
pub fn verify_class_cold(
    world: &World,
    class: &UserClass,
    spec: &VmSpec,
    cov: &mut Cov,
) -> Result<(), Outcome> {
    verify_class_with(world, class, spec, cov, true)
}

fn verify_class_with(
    world: &World,
    class: &UserClass,
    spec: &VmSpec,
    cov: &mut Cov,
    cold: bool,
) -> Result<(), Outcome> {
    probe!(cov);
    for m in &class.methods {
        if m.has_code {
            verify_method_with(world, class, m, spec, cov, cold)?;
        }
    }
    Ok(())
}

/// Verifies a single method (the unit J9 defers until first invocation),
/// consuming the shared per-class analysis table.
///
/// # Errors
///
/// Returns a linking-phase `VerifyError` outcome.
pub fn verify_method(
    world: &World,
    class: &UserClass,
    method: &MethodSummary,
    spec: &VmSpec,
    cov: &mut Cov,
) -> Result<(), Outcome> {
    verify_method_with(world, class, method, spec, cov, false)
}

/// [`verify_method`] with the analysis rebuilt per call — the bench
/// baseline. Same inner code, same probes, bit-identical traces.
///
/// # Errors
///
/// Returns a linking-phase `VerifyError` outcome.
pub fn verify_method_cold(
    world: &World,
    class: &UserClass,
    method: &MethodSummary,
    spec: &VmSpec,
    cov: &mut Cov,
) -> Result<(), Outcome> {
    verify_method_with(world, class, method, spec, cov, true)
}

fn verify_method_with(
    world: &World,
    class: &UserClass,
    method: &MethodSummary,
    spec: &VmSpec,
    cov: &mut Cov,
    cold: bool,
) -> Result<(), Outcome> {
    probe!(cov);
    let analysis = if cold {
        analyze_method(class, method.index).map(Arc::new)
    } else {
        class.analysis.get_or_analyze(class, method.index)
    };
    let analysis = match analysis {
        Some(a) => a,
        None => return Ok(()), // no Code attribute: nothing to verify
    };
    let sig = match &analysis.sig {
        Some(s) => s,
        None => {
            return Err(reject(
                class,
                method,
                VerifyFail::Reject("unparseable method descriptor".into()),
            ))
        }
    };
    let mut v = Verifier {
        world,
        spec,
        cov,
        analysis: &analysis,
        sig,
        method_static: method.access.contains(MethodAccess::STATIC),
        is_init: method.name == "<init>",
    };
    match v.run() {
        Ok(()) => Ok(()),
        Err(f) => Err(reject(class, method, f)),
    }
}

fn reject(class: &UserClass, method: &MethodSummary, f: VerifyFail) -> Outcome {
    let (kind, msg) = match f {
        VerifyFail::Reject(msg) => (JvmErrorKind::VerifyError, msg),
        VerifyFail::Internal(msg) => (JvmErrorKind::InternalError, msg),
    };
    Outcome::rejected(
        Phase::Linking,
        kind,
        format!(
            "(class: {}, method: {} signature: {}) {msg}",
            class.name, method.name, method.desc_text
        ),
    )
}

/// Records a pre-resolved branch edge, failing when the target was not an
/// instruction boundary — only now, when the edge is actually checked.
fn take_target(succs: &mut Vec<usize>, t: &ATarget) -> VResult<()> {
    if t.idx == u32::MAX {
        return fail(format!("branch target {} is not an instruction", t.pc));
    }
    succs.push(t.idx as usize);
    Ok(())
}

struct Verifier<'a> {
    world: &'a World,
    spec: &'a VmSpec,
    cov: &'a mut Cov,
    analysis: &'a MethodAnalysis,
    sig: &'a ASig,
    method_static: bool,
    is_init: bool,
}

impl Verifier<'_> {
    fn run(&mut self) -> VResult<()> {
        probe!(self.cov);
        let analysis = self.analysis;
        if probe_branch!(self.cov, analysis.insns.is_empty()) {
            return fail("code array is empty");
        }

        let entry = self.entry_frame()?;
        let mut in_frames: Vec<Option<Frame>> = Vec::new();
        in_frames.resize_with(analysis.insns.len(), || None);
        let mut work: VecDeque<usize> = VecDeque::new();
        in_frames[0] = Some(entry);
        work.push_back(0);

        // Reusable scratch: the working frame, the successor list, the
        // staged handler edges, and the handler entry frame — allocated
        // once per method instead of once per worklist step.
        let mut frame = Frame {
            locals: Vec::new(),
            stack: Vec::new(),
        };
        let mut hframe = Frame {
            locals: Vec::new(),
            stack: Vec::new(),
        };
        let mut edges: Vec<(usize, Arc<str>)> = Vec::new();
        let mut succs: Vec<usize> = Vec::new();

        let mut steps = 0usize;
        while let Some(idx) = work.pop_front() {
            steps += 1;
            if probe_branch!(self.cov, steps > 40_000) {
                return fail("verification did not converge");
            }
            match in_frames.get(idx).and_then(Option::as_ref) {
                Some(in_frame) => frame.clone_from(in_frame),
                None => return internal(format!("worklist instruction {idx} has no in-frame")),
            }
            // Exception handlers covering this instruction observe its
            // locals with a one-element stack.
            let pc = analysis.pcs[idx];
            self.handler_edges(pc, &mut edges)?;
            for (h, catch) in edges.drain(..) {
                hframe.locals.clone_from(&frame.locals);
                hframe.stack.clear();
                hframe.stack.push(VType::Ref(catch));
                self.merge_into(&mut in_frames, &mut work, h, &hframe, true)?;
            }
            succs.clear();
            self.transfer(idx, &mut frame, &mut succs)?;
            // Every successor of one instruction receives the same
            // post-transfer frame, so recording indices and merging the
            // final scratch frame is equivalent to the old per-edge clones.
            for &s in &succs {
                self.merge_into(&mut in_frames, &mut work, s, &frame, false)?;
            }
        }
        Ok(())
    }

    fn entry_frame(&mut self) -> VResult<Frame> {
        probe!(self.cov);
        let analysis = self.analysis;
        let max_locals = analysis.max_locals as usize;
        let mut locals = vec![VType::Top; max_locals];
        let mut slot = 0usize;
        if !self.method_static {
            if probe_branch!(self.cov, max_locals == 0) {
                return fail("instance method with max_locals 0");
            }
            locals[0] = if self.is_init && &*analysis.class_name != "java/lang/Object" {
                VType::UninitThis
            } else {
                VType::Ref(analysis.class_name.clone())
            };
            slot = 1;
        }
        for vt in &self.sig.param_vts {
            let w = vt.width();
            if probe_branch!(self.cov, slot + w > max_locals) {
                return fail("arguments can't fit into locals");
            }
            locals[slot] = vt.clone();
            if w == 2 {
                locals[slot + 1] = VType::Hi;
            }
            slot += w;
        }
        Ok(Frame {
            locals,
            stack: Vec::new(),
        })
    }

    /// Stages the handler edges for the instruction at `pc` into `edges`:
    /// `(handler index, caught type)` per covering entry, all resolved
    /// before the caller merges any of them (matching the old all-edges-
    /// first evaluation order on the error path).
    fn handler_edges(&mut self, pc: u32, edges: &mut Vec<(usize, Arc<str>)>) -> VResult<()> {
        let analysis = self.analysis;
        for h in &analysis.handlers {
            if (h.start_pc..h.end_pc).contains(&pc) {
                probe!(self.cov);
                let idx = match h.handler {
                    Some(i) => i as usize,
                    None => return fail("exception handler target is not an instruction"),
                };
                edges.push((idx, h.catch.clone()));
            }
        }
        Ok(())
    }

    fn merge_into(
        &mut self,
        in_frames: &mut [Option<Frame>],
        work: &mut VecDeque<usize>,
        idx: usize,
        frame: &Frame,
        is_handler: bool,
    ) -> VResult<()> {
        let slot = match in_frames.get_mut(idx) {
            Some(s) => s,
            None => return internal(format!("merge target {idx} is out of bounds")),
        };
        match slot {
            None => {
                *slot = Some(frame.clone());
                work.push_back(idx);
            }
            Some(existing) => {
                let merged = self.merge_frames(existing, frame, is_handler)?;
                if merged != *existing {
                    *existing = merged;
                    work.push_back(idx);
                }
            }
        }
        Ok(())
    }

    fn merge_frames(&mut self, a: &Frame, b: &Frame, is_handler: bool) -> VResult<Frame> {
        probe!(self.cov);
        if probe_branch!(self.cov, a.stack.len() != b.stack.len()) {
            return fail("inconsistent stack height at merge point");
        }
        let mut locals = Vec::with_capacity(a.locals.len());
        for (x, y) in a.locals.iter().zip(&b.locals) {
            locals.push(self.merge_types(x, y, false)?);
        }
        let mut stack = Vec::with_capacity(a.stack.len());
        for (x, y) in a.stack.iter().zip(&b.stack) {
            stack.push(self.merge_types(x, y, !is_handler)?);
        }
        Ok(Frame { locals, stack })
    }

    fn merge_types(&mut self, a: &VType, b: &VType, on_stack: bool) -> VResult<VType> {
        if a == b {
            return Ok(a.clone());
        }
        probe!(self.cov);
        // GIJ: merging initialized and uninitialized types is an error.
        if probe_branch!(
            self.cov,
            self.spec.check_uninit_merge
                && (a.is_uninitialized() != b.is_uninitialized())
                && a.is_reference()
                && b.is_reference()
        ) {
            return fail("merging initialized and uninitialized object types");
        }
        // J9: stack shapes must match exactly at merge points.
        if probe_branch!(self.cov, on_stack && self.spec.strict_stack_shape_merge) {
            return fail("stack shape inconsistent");
        }
        let merged = match (a, b) {
            (VType::Null, VType::Ref(n)) | (VType::Ref(n), VType::Null) => VType::Ref(n.clone()),
            (VType::Ref(x), VType::Ref(y)) => VType::Ref(self.world.common_super(x, y).into()),
            _ => VType::Top,
        };
        if probe_branch!(self.cov, on_stack && merged == VType::Top) {
            return fail("mismatched stack types at merge point");
        }
        Ok(merged)
    }

    // ----- transfer -----------------------------------------------------

    /// Applies one instruction to `f` in place, recording successor
    /// indices in `succs`.
    fn transfer(&mut self, idx: usize, f: &mut Frame, succs: &mut Vec<usize>) -> VResult<()> {
        use Opcode::*;
        let analysis = self.analysis;
        let insn = &analysis.insns[idx];
        let pc = analysis.pcs[idx];
        let mut falls_through = true;

        match insn {
            AInsn::Simple(op) => match op {
                Nop => {}
                AconstNull => self.push(f, VType::Null)?,
                IconstM1 | Iconst0 | Iconst1 | Iconst2 | Iconst3 | Iconst4 | Iconst5 => {
                    self.push(f, VType::Int)?
                }
                Lconst0 | Lconst1 => self.push_wide(f, VType::Long)?,
                Fconst0 | Fconst1 | Fconst2 => self.push(f, VType::Float)?,
                Dconst0 | Dconst1 => self.push_wide(f, VType::Double)?,
                Iload0 | Iload1 | Iload2 | Iload3 => {
                    self.load(f, (op.byte() - Iload0.byte()) as u16, VType::Int)?
                }
                Lload0 | Lload1 | Lload2 | Lload3 => {
                    self.load(f, (op.byte() - Lload0.byte()) as u16, VType::Long)?
                }
                Fload0 | Fload1 | Fload2 | Fload3 => {
                    self.load(f, (op.byte() - Fload0.byte()) as u16, VType::Float)?
                }
                Dload0 | Dload1 | Dload2 | Dload3 => {
                    self.load(f, (op.byte() - Dload0.byte()) as u16, VType::Double)?
                }
                Aload0 | Aload1 | Aload2 | Aload3 => {
                    self.load_ref(f, (op.byte() - Aload0.byte()) as u16)?
                }
                Istore0 | Istore1 | Istore2 | Istore3 => {
                    self.store(f, (op.byte() - Istore0.byte()) as u16, VType::Int)?
                }
                Lstore0 | Lstore1 | Lstore2 | Lstore3 => {
                    self.store(f, (op.byte() - Lstore0.byte()) as u16, VType::Long)?
                }
                Fstore0 | Fstore1 | Fstore2 | Fstore3 => {
                    self.store(f, (op.byte() - Fstore0.byte()) as u16, VType::Float)?
                }
                Dstore0 | Dstore1 | Dstore2 | Dstore3 => {
                    self.store(f, (op.byte() - Dstore0.byte()) as u16, VType::Double)?
                }
                Astore0 | Astore1 | Astore2 | Astore3 => {
                    self.store_ref(f, (op.byte() - Astore0.byte()) as u16)?
                }
                Iaload | Baload | Caload | Saload => {
                    self.expect(f, VType::Int)?;
                    self.expect_array(f)?;
                    self.push(f, VType::Int)?;
                }
                Laload => {
                    self.expect(f, VType::Int)?;
                    self.expect_array(f)?;
                    self.push_wide(f, VType::Long)?;
                }
                Faload => {
                    self.expect(f, VType::Int)?;
                    self.expect_array(f)?;
                    self.push(f, VType::Float)?;
                }
                Daload => {
                    self.expect(f, VType::Int)?;
                    self.expect_array(f)?;
                    self.push_wide(f, VType::Double)?;
                }
                Aaload => {
                    self.expect(f, VType::Int)?;
                    let arr = self.expect_array(f)?;
                    self.push(f, array_element(&arr))?;
                }
                Iastore | Bastore | Castore | Sastore => {
                    self.expect(f, VType::Int)?;
                    self.expect(f, VType::Int)?;
                    self.expect_array(f)?;
                }
                Lastore => {
                    self.expect_wide(f, VType::Long)?;
                    self.expect(f, VType::Int)?;
                    self.expect_array(f)?;
                }
                Fastore => {
                    self.expect(f, VType::Float)?;
                    self.expect(f, VType::Int)?;
                    self.expect_array(f)?;
                }
                Dastore => {
                    self.expect_wide(f, VType::Double)?;
                    self.expect(f, VType::Int)?;
                    self.expect_array(f)?;
                }
                Aastore => {
                    self.expect_ref(f, true)?;
                    self.expect(f, VType::Int)?;
                    self.expect_array(f)?;
                }
                Pop => {
                    let t = self.pop(f)?;
                    if probe_branch!(self.cov, t.width() == 2 || t == VType::Hi) {
                        return fail("pop on a category-2 value");
                    }
                }
                Pop2 => {
                    self.pop(f)?;
                    self.pop(f)?;
                }
                Dup => {
                    let t = self.pop(f)?;
                    if probe_branch!(self.cov, t == VType::Hi) {
                        return fail("dup splits a category-2 value");
                    }
                    self.push(f, t.clone())?;
                    self.push(f, t)?;
                }
                DupX1 => {
                    let a = self.pop1(f)?;
                    let b = self.pop1(f)?;
                    self.push(f, a.clone())?;
                    self.push(f, b)?;
                    self.push(f, a)?;
                }
                DupX2 => {
                    let a = self.pop1(f)?;
                    let b = self.pop(f)?;
                    let c = self.pop(f)?;
                    self.push(f, a.clone())?;
                    self.push(f, c)?;
                    self.push(f, b)?;
                    self.push(f, a)?;
                }
                Dup2 => {
                    let a = self.pop(f)?;
                    let b = self.pop(f)?;
                    self.push(f, b.clone())?;
                    self.push(f, a.clone())?;
                    self.push(f, b)?;
                    self.push(f, a)?;
                }
                Dup2X1 => {
                    let a = self.pop(f)?;
                    let b = self.pop(f)?;
                    let c = self.pop1(f)?;
                    self.push(f, b.clone())?;
                    self.push(f, a.clone())?;
                    self.push(f, c)?;
                    self.push(f, b)?;
                    self.push(f, a)?;
                }
                Dup2X2 => {
                    let a = self.pop(f)?;
                    let b = self.pop(f)?;
                    let c = self.pop(f)?;
                    let d = self.pop(f)?;
                    self.push(f, b.clone())?;
                    self.push(f, a.clone())?;
                    self.push(f, d)?;
                    self.push(f, c)?;
                    self.push(f, b)?;
                    self.push(f, a)?;
                }
                Swap => {
                    let a = self.pop1(f)?;
                    let b = self.pop1(f)?;
                    self.push(f, a)?;
                    self.push(f, b)?;
                }
                Iadd | Isub | Imul | Idiv | Irem | Ishl | Ishr | Iushr | Iand | Ior | Ixor => {
                    self.expect(f, VType::Int)?;
                    self.expect(f, VType::Int)?;
                    self.push(f, VType::Int)?;
                }
                Ladd | Lsub | Lmul | Ldiv | Lrem | Land | Lor | Lxor => {
                    self.expect_wide(f, VType::Long)?;
                    self.expect_wide(f, VType::Long)?;
                    self.push_wide(f, VType::Long)?;
                }
                Lshl | Lshr | Lushr => {
                    self.expect(f, VType::Int)?;
                    self.expect_wide(f, VType::Long)?;
                    self.push_wide(f, VType::Long)?;
                }
                Fadd | Fsub | Fmul | Fdiv | Frem => {
                    self.expect(f, VType::Float)?;
                    self.expect(f, VType::Float)?;
                    self.push(f, VType::Float)?;
                }
                Dadd | Dsub | Dmul | Ddiv | Drem => {
                    self.expect_wide(f, VType::Double)?;
                    self.expect_wide(f, VType::Double)?;
                    self.push_wide(f, VType::Double)?;
                }
                Ineg => {
                    self.expect(f, VType::Int)?;
                    self.push(f, VType::Int)?;
                }
                Lneg => {
                    self.expect_wide(f, VType::Long)?;
                    self.push_wide(f, VType::Long)?;
                }
                Fneg => {
                    self.expect(f, VType::Float)?;
                    self.push(f, VType::Float)?;
                }
                Dneg => {
                    self.expect_wide(f, VType::Double)?;
                    self.push_wide(f, VType::Double)?;
                }
                I2l => {
                    self.expect(f, VType::Int)?;
                    self.push_wide(f, VType::Long)?;
                }
                I2f => {
                    self.expect(f, VType::Int)?;
                    self.push(f, VType::Float)?;
                }
                I2d => {
                    self.expect(f, VType::Int)?;
                    self.push_wide(f, VType::Double)?;
                }
                L2i => {
                    self.expect_wide(f, VType::Long)?;
                    self.push(f, VType::Int)?;
                }
                L2f => {
                    self.expect_wide(f, VType::Long)?;
                    self.push(f, VType::Float)?;
                }
                L2d => {
                    self.expect_wide(f, VType::Long)?;
                    self.push_wide(f, VType::Double)?;
                }
                F2i => {
                    self.expect(f, VType::Float)?;
                    self.push(f, VType::Int)?;
                }
                F2l => {
                    self.expect(f, VType::Float)?;
                    self.push_wide(f, VType::Long)?;
                }
                F2d => {
                    self.expect(f, VType::Float)?;
                    self.push_wide(f, VType::Double)?;
                }
                D2i => {
                    self.expect_wide(f, VType::Double)?;
                    self.push(f, VType::Int)?;
                }
                D2l => {
                    self.expect_wide(f, VType::Double)?;
                    self.push_wide(f, VType::Long)?;
                }
                D2f => {
                    self.expect_wide(f, VType::Double)?;
                    self.push(f, VType::Float)?;
                }
                I2b | I2c | I2s => {
                    self.expect(f, VType::Int)?;
                    self.push(f, VType::Int)?;
                }
                Lcmp => {
                    self.expect_wide(f, VType::Long)?;
                    self.expect_wide(f, VType::Long)?;
                    self.push(f, VType::Int)?;
                }
                Fcmpl | Fcmpg => {
                    self.expect(f, VType::Float)?;
                    self.expect(f, VType::Float)?;
                    self.push(f, VType::Int)?;
                }
                Dcmpl | Dcmpg => {
                    self.expect_wide(f, VType::Double)?;
                    self.expect_wide(f, VType::Double)?;
                    self.push(f, VType::Int)?;
                }
                Ireturn => {
                    self.check_return(f, Some(VType::Int))?;
                    falls_through = false;
                }
                Lreturn => {
                    self.check_return(f, Some(VType::Long))?;
                    falls_through = false;
                }
                Freturn => {
                    self.check_return(f, Some(VType::Float))?;
                    falls_through = false;
                }
                Dreturn => {
                    self.check_return(f, Some(VType::Double))?;
                    falls_through = false;
                }
                Areturn => {
                    self.check_return(f, Some(VType::Null))?;
                    falls_through = false;
                }
                Return => {
                    self.check_return(f, None)?;
                    falls_through = false;
                }
                Arraylength => {
                    self.expect_array(f)?;
                    self.push(f, VType::Int)?;
                }
                Athrow => {
                    let t = self.expect_ref(f, false)?;
                    if probe_branch!(self.cov, t.is_uninitialized()) {
                        return fail("throwing an uninitialized object");
                    }
                    falls_through = false;
                }
                Monitorenter | Monitorexit => {
                    self.expect_ref(f, false)?;
                }
                other => {
                    probe!(self.cov);
                    return fail(format!("unexpected operand-free opcode {other}"));
                }
            },
            AInsn::PushInt => self.push(f, VType::Int)?,
            AInsn::Ldc(kind) => {
                probe!(self.cov);
                match kind {
                    ALdc::Int => self.push(f, VType::Int)?,
                    ALdc::Float => self.push(f, VType::Float)?,
                    ALdc::Ref(n) => self.push(f, VType::Ref(n.clone()))?,
                    ALdc::Unusable => return fail("ldc references an unloadable constant"),
                }
            }
            AInsn::Ldc2(kind) => match kind {
                ALdc2::Long => self.push_wide(f, VType::Long)?,
                ALdc2::Double => self.push_wide(f, VType::Double)?,
                ALdc2::Unusable => return fail("ldc2_w references a non-wide constant"),
            },
            AInsn::Local(op, slot) => match op {
                Iload => self.load(f, *slot, VType::Int)?,
                Lload => self.load(f, *slot, VType::Long)?,
                Fload => self.load(f, *slot, VType::Float)?,
                Dload => self.load(f, *slot, VType::Double)?,
                Aload => self.load_ref(f, *slot)?,
                Istore => self.store(f, *slot, VType::Int)?,
                Lstore => self.store(f, *slot, VType::Long)?,
                Fstore => self.store(f, *slot, VType::Float)?,
                Dstore => self.store(f, *slot, VType::Double)?,
                Astore => self.store_ref(f, *slot)?,
                Ret => return fail("jsr/ret are not permitted in version 51 classfiles"),
                other => return fail(format!("bad local-variable opcode {other}")),
            },
            AInsn::Iinc(index) => {
                self.check_local(f, *index, &VType::Int)?;
            }
            AInsn::Branch(op, t) => match op {
                Goto | GotoW => {
                    take_target(succs, t)?;
                    falls_through = false;
                }
                Jsr | JsrW => return fail("jsr/ret are not permitted in version 51 classfiles"),
                Ifeq | Ifne | Iflt | Ifge | Ifgt | Ifle => {
                    self.expect(f, VType::Int)?;
                    take_target(succs, t)?;
                }
                IfIcmpeq | IfIcmpne | IfIcmplt | IfIcmpge | IfIcmpgt | IfIcmple => {
                    self.expect(f, VType::Int)?;
                    self.expect(f, VType::Int)?;
                    take_target(succs, t)?;
                }
                IfAcmpeq | IfAcmpne => {
                    self.expect_ref(f, false)?;
                    self.expect_ref(f, false)?;
                    take_target(succs, t)?;
                }
                Ifnull | Ifnonnull => {
                    self.expect_ref(f, false)?;
                    take_target(succs, t)?;
                }
                other => return fail(format!("bad branch opcode {other}")),
            },
            AInsn::Field(op, fact) => {
                probe!(self.cov);
                let vt = match fact {
                    AField::Ok(vt) => vt,
                    AField::Unresolved(cpi) => return Err(self.member_fail(*cpi, "field")),
                    AField::BadDesc(desc) => return fail(format!("bad field descriptor {desc:?}")),
                };
                match op {
                    Getstatic => self.push_any(f, vt.clone())?,
                    Putstatic => self.expect_assignable(f, vt)?,
                    Getfield => {
                        let recv = self.expect_ref(f, false)?;
                        if probe_branch!(self.cov, recv.is_uninitialized()) {
                            return fail("field access on uninitialized object");
                        }
                        self.push_any(f, vt.clone())?;
                    }
                    Putfield => {
                        self.expect_assignable(f, vt)?;
                        let recv = self.expect_ref(f, false)?;
                        // putfield on `this` before super() is legal only
                        // for fields of the current class; we allow it.
                        if probe_branch!(self.cov, matches!(recv, VType::Uninit(_))) {
                            return fail("putfield on uninitialized object");
                        }
                    }
                    other => return fail(format!("bad field opcode {other}")),
                }
            }
            AInsn::Invoke { shape, call } => {
                let shape = match shape {
                    Ok(s) => *s,
                    Err(other) => return fail(format!("bad invoke opcode {other}")),
                };
                self.invoke(f, call, shape)?;
            }
            AInsn::InvokeDynamic => {
                return fail("invokedynamic is not supported by this VM generation")
            }
            AInsn::New(cls) => {
                let name = self.class_name_of(cls)?;
                if probe_branch!(self.cov, self.world.is_interface(&name) == Some(true)) {
                    return fail(format!("new of interface {name}"));
                }
                self.push(f, VType::Uninit(pc))?;
            }
            AInsn::NewArray { atype, desc } => {
                if probe_branch!(self.cov, !(4..=11).contains(atype)) {
                    return fail(format!("newarray with bad type code {atype}"));
                }
                self.expect(f, VType::Int)?;
                self.push(f, VType::Ref(desc.clone()))?;
            }
            AInsn::ANewArray(cls) => {
                // `Ok` carries the pre-rendered array descriptor; the
                // resolution failure fires first, as on the cold path.
                let desc = self.class_name_of(cls)?;
                self.expect(f, VType::Int)?;
                self.push(f, VType::Ref(desc))?;
            }
            AInsn::CheckCast(cls) => {
                let name = self.class_name_of(cls)?;
                let v = self.expect_ref(f, false)?;
                if probe_branch!(self.cov, v.is_uninitialized()) {
                    return fail("checkcast on uninitialized object");
                }
                self.push(f, VType::Ref(name))?;
            }
            AInsn::InstanceOf(cls) => {
                let _ = self.class_name_of(cls)?;
                let v = self.expect_ref(f, false)?;
                if probe_branch!(self.cov, v.is_uninitialized()) {
                    return fail("instanceof on uninitialized object");
                }
                self.push(f, VType::Int)?;
            }
            AInsn::MultiANewArray { dims, vt } => {
                if probe_branch!(self.cov, *dims == 0) {
                    return fail("multianewarray with zero dimensions");
                }
                for _ in 0..*dims {
                    self.expect(f, VType::Int)?;
                }
                self.push(f, VType::Ref(vt.clone()))?;
            }
            AInsn::TableSwitch { default, targets } | AInsn::LookupSwitch { default, targets } => {
                self.expect(f, VType::Int)?;
                take_target(succs, default)?;
                for t in targets {
                    take_target(succs, t)?;
                }
                falls_through = false;
            }
        }

        if falls_through {
            probe!(self.cov);
            if probe_branch!(self.cov, idx + 1 >= analysis.insns.len()) {
                return fail("execution falls off the end of the code");
            }
            succs.push(idx + 1);
        }
        Ok(())
    }

    // ----- stack/local helpers -------------------------------------------

    fn push(&mut self, f: &mut Frame, t: VType) -> VResult<()> {
        if probe_branch!(
            self.cov,
            f.stack.len() + 1 > self.analysis.max_stack as usize
        ) {
            return fail("operand stack overflow (exceeds declared max_stack)");
        }
        f.stack.push(t);
        Ok(())
    }

    fn push_wide(&mut self, f: &mut Frame, t: VType) -> VResult<()> {
        if probe_branch!(
            self.cov,
            f.stack.len() + 2 > self.analysis.max_stack as usize
        ) {
            return fail("operand stack overflow (exceeds declared max_stack)");
        }
        f.stack.push(t);
        f.stack.push(VType::Hi);
        Ok(())
    }

    fn push_any(&mut self, f: &mut Frame, t: VType) -> VResult<()> {
        if t.width() == 2 {
            self.push_wide(f, t)
        } else {
            self.push(f, t)
        }
    }

    fn pop(&mut self, f: &mut Frame) -> VResult<VType> {
        match f.stack.pop() {
            Some(t) => Ok(t),
            None => {
                probe!(self.cov);
                fail("operand stack underflow")
            }
        }
    }

    /// Pops a category-1 value.
    fn pop1(&mut self, f: &mut Frame) -> VResult<VType> {
        let t = self.pop(f)?;
        if probe_branch!(self.cov, t == VType::Hi || t.width() == 2) {
            return fail("expected a category-1 value");
        }
        Ok(t)
    }

    fn expect(&mut self, f: &mut Frame, want: VType) -> VResult<()> {
        let got = self.pop(f)?;
        if probe_branch!(self.cov, got != want) {
            return fail(format!("expected {want:?} on stack, found {got:?}"));
        }
        Ok(())
    }

    fn expect_wide(&mut self, f: &mut Frame, want: VType) -> VResult<()> {
        let hi = self.pop(f)?;
        if probe_branch!(self.cov, hi != VType::Hi) {
            return fail("expected the upper half of a category-2 value");
        }
        self.expect(f, want)
    }

    fn expect_ref(&mut self, f: &mut Frame, _allow_null_only: bool) -> VResult<VType> {
        let got = self.pop(f)?;
        if probe_branch!(self.cov, !got.is_reference()) {
            return fail(format!("expected a reference on stack, found {got:?}"));
        }
        Ok(got)
    }

    fn expect_array(&mut self, f: &mut Frame) -> VResult<VType> {
        let got = self.expect_ref(f, false)?;
        let ok = matches!(&got, VType::Null) || matches!(&got, VType::Ref(n) if n.starts_with('['));
        if probe_branch!(self.cov, !ok) {
            return fail(format!("expected an array reference, found {got:?}"));
        }
        Ok(got)
    }

    /// Pops a value that must be assignable to the declared type `want`.
    fn expect_assignable(&mut self, f: &mut Frame, want: &VType) -> VResult<()> {
        if want.width() == 2 {
            return self.expect_wide(f, want.clone());
        }
        let got = self.pop(f)?;
        self.check_assignable(&got, want)
    }

    fn check_assignable(&mut self, got: &VType, want: &VType) -> VResult<()> {
        probe!(self.cov);
        match (want, got) {
            (VType::Int, VType::Int)
            | (VType::Float, VType::Float)
            | (VType::Long, VType::Long)
            | (VType::Double, VType::Double) => Ok(()),
            (VType::Ref(_), VType::Null) => Ok(()),
            (VType::Ref(target), VType::Ref(src)) => {
                let both_known = self.world.exists(target) && self.world.exists(src);
                if probe_branch!(self.cov, both_known) {
                    if probe_branch!(self.cov, self.world.is_subtype(src, target)) {
                        Ok(())
                    } else if self.spec.check_param_cast {
                        // GIJ: provably incompatible reference types.
                        fail(format!(
                            "incompatible type: {src} is not assignable to {target}"
                        ))
                    } else if probe_branch!(self.cov, self.world.is_interface(target) == Some(true))
                    {
                        // Interfaces are checked at runtime, not by the
                        // verifier (JVMS: invokeinterface does the check).
                        Ok(())
                    } else if self.world.is_subtype(target, src) {
                        // Downcast-shaped flows are tolerated by the lenient
                        // inference verifier.
                        Ok(())
                    } else {
                        fail(format!("{src} is not assignable to {target}"))
                    }
                } else if probe_branch!(self.cov, self.spec.check_param_cast) {
                    // Strict mode: unknown classes are compatible only
                    // nominally.
                    if src == target || &**target == "java/lang/Object" {
                        Ok(())
                    } else {
                        fail(format!(
                            "cannot prove {src} assignable to {target} (unsafe type casting)"
                        ))
                    }
                } else {
                    Ok(()) // lenient: assume assignable, resolve at runtime
                }
            }
            (VType::Ref(_), v) if v.is_uninitialized() => {
                fail("using an uninitialized object where a value is required")
            }
            _ => fail(format!("expected {want:?}, found {got:?}")),
        }
    }

    fn check_local(&mut self, f: &mut Frame, slot: u16, want: &VType) -> VResult<()> {
        let slot = slot as usize;
        if probe_branch!(self.cov, slot >= f.locals.len()) {
            return fail("local variable index out of bounds");
        }
        if probe_branch!(self.cov, &f.locals[slot] != want) {
            return fail(format!(
                "local {slot} holds {:?}, expected {want:?}",
                f.locals[slot]
            ));
        }
        Ok(())
    }

    fn load(&mut self, f: &mut Frame, slot: u16, want: VType) -> VResult<()> {
        let wide = want.width() == 2;
        self.check_local(f, slot, &want)?;
        if wide {
            if probe_branch!(
                self.cov,
                f.locals.get(slot as usize + 1) != Some(&VType::Hi)
            ) {
                return fail("category-2 local is missing its upper half");
            }
            self.push_wide(f, want)
        } else {
            self.push(f, want)
        }
    }

    fn load_ref(&mut self, f: &mut Frame, slot: u16) -> VResult<()> {
        let slot_us = slot as usize;
        if probe_branch!(self.cov, slot_us >= f.locals.len()) {
            return fail("local variable index out of bounds");
        }
        let t = f.locals[slot_us].clone();
        if probe_branch!(self.cov, !t.is_reference()) {
            return fail(format!("aload of non-reference local {slot} ({t:?})"));
        }
        self.push(f, t)
    }

    fn store(&mut self, f: &mut Frame, slot: u16, want: VType) -> VResult<()> {
        let wide = want.width() == 2;
        if wide {
            self.expect_wide(f, want.clone())?;
        } else {
            self.expect(f, want.clone())?;
        }
        self.set_local(f, slot, want)
    }

    fn store_ref(&mut self, f: &mut Frame, slot: u16) -> VResult<()> {
        let t = self.expect_ref(f, false)?;
        self.set_local(f, slot, t)
    }

    fn set_local(&mut self, f: &mut Frame, slot: u16, t: VType) -> VResult<()> {
        let slot = slot as usize;
        let w = t.width();
        if probe_branch!(self.cov, slot + w > f.locals.len()) {
            return fail("local variable index out of bounds for store");
        }
        // Clobber the other half of any wide value we are overwriting.
        if slot > 0 && f.locals[slot] == VType::Hi {
            f.locals[slot - 1] = VType::Top;
        }
        if w == 2 {
            f.locals[slot] = t;
            f.locals[slot + 1] = VType::Hi;
        } else {
            if f.locals[slot].width() == 2 && slot + 1 < f.locals.len() {
                f.locals[slot + 1] = VType::Top;
            }
            f.locals[slot] = t;
        }
        Ok(())
    }

    fn check_return(&mut self, f: &mut Frame, kind: Option<VType>) -> VResult<()> {
        probe!(self.cov);
        let sig = self.sig;
        match (&sig.ret_vt, kind) {
            (None, None) => {}
            (Some(_), None) => return fail("return in a method expecting a value"),
            (None, Some(_)) => return fail("value return in a void method"),
            (Some(ret), Some(VType::Null)) => {
                // areturn: pop a reference assignable to the return type.
                let got = self.expect_ref(f, false)?;
                if probe_branch!(self.cov, got.is_uninitialized()) {
                    return fail("returning an uninitialized object");
                }
                let ret = ret.clone();
                if let (VType::Ref(_), VType::Ref(_)) = (&got, &ret) {
                    self.check_assignable(&got, &ret)?;
                } else if !matches!(ret, VType::Ref(_)) {
                    return fail("areturn in a method returning a primitive");
                }
            }
            (Some(ret), Some(want)) => {
                let ret_v = ret.clone();
                if probe_branch!(self.cov, ret_v != want) {
                    return fail(format!(
                        "return opcode for {want:?} in a method returning {ret_v:?}"
                    ));
                }
                if want.width() == 2 {
                    self.expect_wide(f, want)?;
                } else {
                    self.expect(f, want)?;
                }
            }
        }
        // In <init>, `this` must be initialized before any return.
        if probe_branch!(
            self.cov,
            self.is_init && f.locals.first() == Some(&VType::UninitThis)
        ) {
            return fail("constructor returns before calling super()");
        }
        Ok(())
    }

    // ----- analysis-fact helpers ------------------------------------------

    /// The single shared failure site for unresolvable class references
    /// (`new` / `anewarray` / `checkcast` / `instanceof`), matching the
    /// old `class_at` helper's one probe.
    fn class_name_of(&mut self, cls: &AClass) -> VResult<Arc<str>> {
        match cls {
            AClass::Ok(n) => Ok(n.clone()),
            AClass::Unresolved(cpi) => {
                probe!(self.cov);
                fail(format!("constant pool entry {cpi} is not a class"))
            }
        }
    }

    /// The single shared failure site for unresolvable member references
    /// (fields and methods), matching the old `member` helper's one probe.
    fn member_fail(&mut self, cpi: ConstIndex, what: &str) -> VerifyFail {
        probe!(self.cov);
        VerifyFail::Reject(format!(
            "constant pool entry {cpi} is not a {what} reference"
        ))
    }

    fn invoke(&mut self, f: &mut Frame, call: &AInvoke, shape: InvokeShape) -> VResult<()> {
        probe!(self.cov);
        let call: &ACall = match call {
            AInvoke::Ok(c) => c,
            AInvoke::Unresolved(cpi) => return Err(self.member_fail(*cpi, "method")),
            AInvoke::BadDesc(desc) => return fail(format!("bad method descriptor {desc:?}")),
        };
        if probe_branch!(self.cov, call.is_init && shape != InvokeShape::Special) {
            return fail("<init> may only be invoked by invokespecial");
        }
        // Pop arguments right-to-left, checking assignability — the check
        // GIJ applies strictly (Problem 2's M1433982529 example).
        for p in call.param_vts.iter().rev() {
            self.expect_assignable(f, p)?;
        }
        // Receiver.
        if shape != InvokeShape::Static {
            let recv = self.expect_ref(f, false)?;
            if call.is_init {
                probe!(self.cov);
                match recv {
                    VType::Uninit(alloc_pc) => {
                        replace_types(f, &VType::Uninit(alloc_pc), VType::Ref(call.class.clone()));
                    }
                    VType::UninitThis => {
                        let this = self.analysis.class_name.clone();
                        replace_types(f, &VType::UninitThis, VType::Ref(this));
                    }
                    _ => {
                        probe!(self.cov);
                        return fail("<init> called on an initialized object");
                    }
                }
            } else if probe_branch!(self.cov, recv.is_uninitialized()) {
                return fail("method invocation on uninitialized object");
            } else if let VType::Ref(recv_name) = &recv {
                // Receiver compatibility — lenient about unknown classes.
                let class = &call.class;
                let both_known = self.world.exists(recv_name) && self.world.exists(class);
                let iface_target = self.world.is_interface(class) == Some(true);
                if probe_branch!(
                    self.cov,
                    both_known
                        && !iface_target
                        && !class.starts_with('[')
                        && !recv_name.starts_with('[')
                        && !self.world.is_subtype(recv_name, class)
                        && !self.world.is_subtype(class, recv_name)
                ) {
                    return fail(format!("receiver {recv_name} is incompatible with {class}"));
                }
            }
        }
        if let Some(ret) = &call.ret_vt {
            self.push_any(f, ret.clone())?;
        }
        Ok(())
    }
}

fn replace_types(f: &mut Frame, from: &VType, to: VType) {
    for slot in f.locals.iter_mut().chain(f.stack.iter_mut()) {
        if slot == from {
            *slot = to.clone();
        }
    }
}

fn array_element(arr: &VType) -> VType {
    match arr {
        VType::Ref(n) if n.starts_with('[') => {
            let elem = &n[1..];
            match FieldType::parse(elem) {
                Ok(ft) => vtype_of(&ft),
                Err(_) => VType::Ref("java/lang/Object".into()),
            }
        }
        _ => VType::Ref("java/lang/Object".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use classfuzz_jimple::{lower::lower_class, IrClass};

    fn verify(class: &IrClass, spec: &VmSpec) -> Result<(), Outcome> {
        let user = UserClass::summarize(lower_class(class));
        let world = World::new(spec, vec![user]);
        let user = world.user_class(&class.name).unwrap();
        verify_class(&world, user, spec, &mut Cov::disabled())
    }

    #[test]
    fn valid_hello_verifies_on_all() {
        let c = IrClass::with_hello_main("v/Hello", "Completed!");
        for spec in VmSpec::all_five() {
            assert!(
                verify(&c, &spec).is_ok(),
                "{} rejected valid code",
                spec.name
            );
        }
    }

    #[test]
    fn cold_verification_matches_shared_analysis() {
        let c = IrClass::with_hello_main("v/ColdEq", "Completed!");
        let user = UserClass::summarize(lower_class(&c));
        for spec in VmSpec::all_five() {
            let world = World::new(&spec, vec![user.clone()]);
            let user = world.user_class(&c.name).unwrap();
            let shared = verify_class(&world, user, &spec, &mut Cov::disabled());
            let cold = verify_class_cold(&world, user, &spec, &mut Cov::disabled());
            assert_eq!(shared.is_ok(), cold.is_ok(), "on {}", spec.name);
            // A rerun hits the warm analysis table and agrees again.
            let warm = verify_class(&world, user, &spec, &mut Cov::disabled());
            assert_eq!(shared.is_ok(), warm.is_ok(), "warm rerun on {}", spec.name);
        }
    }

    #[test]
    fn type_confused_local_fails_verification() {
        use classfuzz_jimple::*;
        // The paper's Table 2 local-variable mutation: declare the local as
        // String but store an int into it; the later aload sees an Int slot.
        let mut c = IrClass::new("v/Conf");
        let mut body = Body::new();
        body.declare("x", JType::string());
        body.stmts.push(Stmt::Assign {
            target: Target::Local("x".into()),
            value: Expr::Use(Value::int(3)),
        });
        body.stmts.push(Stmt::Assign {
            target: Target::Local("y".into()),
            value: Expr::Use(Value::local("x")), // aload of an Int slot
        });
        body.declare("y", JType::string());
        body.stmts.push(Stmt::Return(None));
        c.methods.push(IrMethod {
            access: classfuzz_classfile::MethodAccess::PUBLIC
                | classfuzz_classfile::MethodAccess::STATIC,
            name: "m".into(),
            params: vec![],
            ret: None,
            exceptions: vec![],
            body: Some(body),
        });
        let out = verify(&c, &VmSpec::hotspot9());
        assert!(matches!(
            out,
            Err(Outcome::Rejected { phase: Phase::Linking, ref error })
                if error.kind == JvmErrorKind::VerifyError
        ));
    }

    #[test]
    fn problem2_param_cast_gij_strict_hotspot_lenient() {
        use classfuzz_jimple::*;
        // M1433982529: pass a String where an unknown class declares Map.
        let mut c = IrClass::new("v/M1433982529");
        let mut body = Body::new();
        body.declare("s", JType::string());
        body.stmts.push(Stmt::Assign {
            target: Target::Local("s".into()),
            value: Expr::Use(Value::str("x")),
        });
        body.stmts.push(Stmt::Invoke(InvokeExpr {
            kind: InvokeKind::Static,
            class: "unknown/Helper".into(),
            name: "getBoolean".into(),
            params: vec![JType::object("java/util/Map")],
            ret: Some(JType::Boolean),
            receiver: None,
            args: vec![Value::local("s")],
        }));
        body.stmts.push(Stmt::Return(None));
        c.methods.push(IrMethod {
            access: classfuzz_classfile::MethodAccess::PUBLIC
                | classfuzz_classfile::MethodAccess::STATIC,
            name: "m".into(),
            params: vec![],
            ret: None,
            exceptions: vec![],
            body: Some(body),
        });
        assert!(
            verify(&c, &VmSpec::hotspot9()).is_ok(),
            "HotSpot misses the bad cast"
        );
        assert!(
            verify(&c, &VmSpec::gij()).is_err(),
            "GIJ catches the bad cast"
        );
    }

    #[test]
    fn stack_underflow_detected() {
        use classfuzz_classfile::attributes::CodeAttribute;
        use classfuzz_classfile::{Instruction, MethodAccess, Opcode};
        let cf = classfuzz_classfile::ClassFile::builder("v/Under")
            .super_class("java/lang/Object")
            .method(
                MethodAccess::STATIC,
                "m",
                "()V",
                CodeAttribute {
                    max_stack: 2,
                    max_locals: 0,
                    instructions: vec![
                        Instruction::Simple(Opcode::Pop),
                        Instruction::Simple(Opcode::Return),
                    ],
                    exception_table: vec![],
                    attributes: vec![],
                },
            )
            .build();
        let spec = VmSpec::hotspot9();
        let user = UserClass::summarize(cf);
        let world = World::new(&spec, vec![]);
        let m = user.methods[0].clone();
        assert!(verify_method(&world, &user, &m, &spec, &mut Cov::disabled()).is_err());
    }

    #[test]
    fn falling_off_end_detected() {
        use classfuzz_classfile::attributes::CodeAttribute;
        use classfuzz_classfile::{Instruction, MethodAccess, Opcode};
        let cf = classfuzz_classfile::ClassFile::builder("v/Fall")
            .super_class("java/lang/Object")
            .method(
                MethodAccess::STATIC,
                "m",
                "()V",
                CodeAttribute {
                    max_stack: 1,
                    max_locals: 0,
                    instructions: vec![Instruction::Simple(Opcode::Iconst0)],
                    exception_table: vec![],
                    attributes: vec![],
                },
            )
            .build();
        let spec = VmSpec::hotspot9();
        let user = UserClass::summarize(cf);
        let world = World::new(&spec, vec![]);
        let m = user.methods[0].clone();
        let err = verify_method(&world, &user, &m, &spec, &mut Cov::disabled());
        assert!(matches!(err, Err(Outcome::Rejected { .. })));
    }

    #[test]
    fn declared_max_stack_enforced() {
        use classfuzz_classfile::attributes::CodeAttribute;
        use classfuzz_classfile::{Instruction, MethodAccess, Opcode};
        let cf = classfuzz_classfile::ClassFile::builder("v/Deep")
            .super_class("java/lang/Object")
            .method(
                MethodAccess::STATIC,
                "m",
                "()V",
                CodeAttribute {
                    max_stack: 1,
                    max_locals: 0,
                    instructions: vec![
                        Instruction::Simple(Opcode::Iconst0),
                        Instruction::Simple(Opcode::Iconst1),
                        Instruction::Simple(Opcode::Pop),
                        Instruction::Simple(Opcode::Pop),
                        Instruction::Simple(Opcode::Return),
                    ],
                    exception_table: vec![],
                    attributes: vec![],
                },
            )
            .build();
        let spec = VmSpec::hotspot9();
        let user = UserClass::summarize(cf);
        let world = World::new(&spec, vec![]);
        let m = user.methods[0].clone();
        assert!(verify_method(&world, &user, &m, &spec, &mut Cov::disabled()).is_err());
    }

    #[test]
    fn uninitialized_object_use_rejected() {
        use classfuzz_jimple::*;
        // new without <init>, then invokevirtual on it.
        let mut c = IrClass::new("v/Uninit");
        let mut body = Body::new();
        body.declare("o", JType::object("java/lang/Thread"));
        body.stmts.push(Stmt::Assign {
            target: Target::Local("o".into()),
            value: Expr::New("java/lang/Thread".into()),
        });
        body.stmts.push(Stmt::Invoke(InvokeExpr {
            kind: InvokeKind::Virtual,
            class: "java/lang/Thread".into(),
            name: "start".into(),
            params: vec![],
            ret: None,
            receiver: Some(Value::local("o")),
            args: vec![],
        }));
        body.stmts.push(Stmt::Return(None));
        c.methods.push(IrMethod {
            access: classfuzz_classfile::MethodAccess::STATIC,
            name: "m".into(),
            params: vec![],
            ret: None,
            exceptions: vec![],
            body: Some(body),
        });
        assert!(verify(&c, &VmSpec::hotspot9()).is_err());
    }

    #[test]
    fn jsr_rejected_in_version_51() {
        use classfuzz_classfile::attributes::CodeAttribute;
        use classfuzz_classfile::{Instruction, MethodAccess, Opcode};
        let cf = classfuzz_classfile::ClassFile::builder("v/Jsr")
            .super_class("java/lang/Object")
            .method(
                MethodAccess::STATIC,
                "m",
                "()V",
                CodeAttribute {
                    max_stack: 1,
                    max_locals: 0,
                    instructions: vec![
                        Instruction::Branch(Opcode::Jsr, 3),
                        Instruction::Simple(Opcode::Return),
                    ],
                    exception_table: vec![],
                    attributes: vec![],
                },
            )
            .build();
        let spec = VmSpec::hotspot9();
        let user = UserClass::summarize(cf);
        let world = World::new(&spec, vec![]);
        let m = user.methods[0].clone();
        assert!(verify_method(&world, &user, &m, &spec, &mut Cov::disabled()).is_err());
    }
}
