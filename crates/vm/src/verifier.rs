//! Bytecode verification by type inference (JVMS §4.10.2), parameterised by
//! the policy knobs in which the paper's JVMs differ.
//!
//! The verifier runs a worklist dataflow over basic frames: each local slot
//! and stack slot carries a [`VType`]; instructions are abstract transfer
//! functions; frames merge at join points. Policy knobs:
//!
//! * `strict_stack_shape_merge` (J9) — merge demands *identical* stack
//!   shapes, reporting the "stack shape inconsistent" errors of §1;
//! * `check_uninit_merge` (GIJ) — merging initialized with uninitialized
//!   types is an error (HotSpot silently widens to `Top`);
//! * `check_param_cast` (GIJ) — reference arguments must be provably
//!   assignable (HotSpot assumes assignability for unloaded classes).

use std::collections::{BTreeMap, VecDeque};

use classfuzz_classfile::{
    CodeAttribute, FieldType, Instruction, MethodAccess, MethodDescriptor, Opcode,
};

use crate::cov::Cov;
use crate::outcome::{JvmErrorKind, Outcome, Phase};
use crate::spec::VmSpec;
use crate::world::{MethodSummary, UserClass, World};
use crate::{probe, probe_branch};

/// A verification type (one stack/local slot).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VType {
    /// Unusable/unknown.
    Top,
    /// `int` and its sub-word kin.
    Int,
    /// `float`.
    Float,
    /// `long` (first slot; followed by [`VType::Hi`]).
    Long,
    /// `double` (first slot; followed by [`VType::Hi`]).
    Double,
    /// Second slot of a wide value.
    Hi,
    /// The `null` reference.
    Null,
    /// A reference of the given class (or array descriptor) name.
    Ref(String),
    /// A `new`-allocated object not yet initialized (keyed by allocation pc).
    Uninit(u32),
    /// `this` in an `<init>` before the superclass constructor call.
    UninitThis,
}

impl VType {
    fn is_reference(&self) -> bool {
        matches!(
            self,
            VType::Null | VType::Ref(_) | VType::Uninit(_) | VType::UninitThis
        )
    }

    fn is_uninitialized(&self) -> bool {
        matches!(self, VType::Uninit(_) | VType::UninitThis)
    }

    fn width(&self) -> usize {
        match self {
            VType::Long | VType::Double => 2,
            _ => 1,
        }
    }
}

fn vtype_of(ft: &FieldType) -> VType {
    match ft {
        FieldType::Boolean
        | FieldType::Byte
        | FieldType::Char
        | FieldType::Short
        | FieldType::Int => VType::Int,
        FieldType::Float => VType::Float,
        FieldType::Long => VType::Long,
        FieldType::Double => VType::Double,
        FieldType::Object(n) => VType::Ref(n.clone()),
        FieldType::Array(_) => VType::Ref(ft.to_descriptor()),
    }
}

#[derive(Debug, Clone, PartialEq)]
struct Frame {
    locals: Vec<VType>,
    stack: Vec<VType>,
}

/// An in-flight verification failure; converted to a linking-phase
/// `VerifyError` outcome at the boundary.
#[derive(Debug, Clone)]
struct VerifyFail(String);

type VResult<T> = Result<T, VerifyFail>;

fn fail<T>(msg: impl Into<String>) -> VResult<T> {
    Err(VerifyFail(msg.into()))
}

/// Verifies every method of `class` that carries code (eager linking).
///
/// # Errors
///
/// Returns a linking-phase `VerifyError` outcome naming the first offending
/// method.
pub fn verify_class(
    world: &World,
    class: &UserClass,
    spec: &VmSpec,
    cov: &mut Cov,
) -> Result<(), Outcome> {
    probe!(cov);
    for m in &class.methods {
        if m.has_code {
            verify_method(world, class, m, spec, cov)?;
        }
    }
    Ok(())
}

/// Verifies a single method (the unit J9 defers until first invocation).
///
/// # Errors
///
/// Returns a linking-phase `VerifyError` outcome.
pub fn verify_method(
    world: &World,
    class: &UserClass,
    method: &MethodSummary,
    spec: &VmSpec,
    cov: &mut Cov,
) -> Result<(), Outcome> {
    probe!(cov);
    let info = &class.cf.methods[method.index];
    let code = match info.code() {
        Some(c) => c,
        None => return Ok(()),
    };
    let desc = match &method.desc {
        Some(d) => d.clone(),
        None => {
            return Err(reject(
                class,
                method,
                "unparseable method descriptor".into(),
            ))
        }
    };
    let mut v = Verifier {
        world,
        spec,
        cov,
        class_name: class.name.clone(),
        method_static: method.access.contains(MethodAccess::STATIC),
        is_init: method.name == "<init>",
        desc,
        code,
        pcs: Vec::new(),
        pc_to_idx: BTreeMap::new(),
    };
    match v.run() {
        Ok(()) => Ok(()),
        Err(VerifyFail(msg)) => Err(reject(class, method, msg)),
    }
}

fn reject(class: &UserClass, method: &MethodSummary, msg: String) -> Outcome {
    Outcome::rejected(
        Phase::Linking,
        JvmErrorKind::VerifyError,
        format!(
            "(class: {}, method: {} signature: {}) {msg}",
            class.name, method.name, method.desc_text
        ),
    )
}

struct Verifier<'a> {
    world: &'a World,
    spec: &'a VmSpec,
    cov: &'a mut Cov,
    class_name: String,
    method_static: bool,
    is_init: bool,
    desc: MethodDescriptor,
    code: &'a CodeAttribute,
    pcs: Vec<u32>,
    pc_to_idx: BTreeMap<u32, usize>,
}

impl Verifier<'_> {
    fn run(&mut self) -> VResult<()> {
        probe!(self.cov);
        if probe_branch!(self.cov, self.code.instructions.is_empty()) {
            return fail("code array is empty");
        }
        // Lay out instruction offsets.
        let mut pc = 0u32;
        for (i, insn) in self.code.instructions.iter().enumerate() {
            self.pcs.push(pc);
            self.pc_to_idx.insert(pc, i);
            pc += insn.encoded_len(pc);
        }

        let entry = self.entry_frame()?;
        let mut in_frames: BTreeMap<usize, Frame> = BTreeMap::new();
        let mut work: VecDeque<usize> = VecDeque::new();
        in_frames.insert(0, entry);
        work.push_back(0);

        let mut steps = 0usize;
        while let Some(idx) = work.pop_front() {
            steps += 1;
            if probe_branch!(self.cov, steps > 40_000) {
                return fail("verification did not converge");
            }
            let frame = in_frames[&idx].clone();
            // Exception handlers covering this instruction observe its
            // locals with a one-element stack.
            let pc = self.pcs[idx];
            for (h, handler_frame) in self.handler_edges(&frame, pc)? {
                self.merge_into(&mut in_frames, &mut work, h, handler_frame, true)?;
            }
            let next = self.transfer(idx, frame)?;
            for (succ, f) in next {
                self.merge_into(&mut in_frames, &mut work, succ, f, false)?;
            }
        }
        Ok(())
    }

    fn entry_frame(&mut self) -> VResult<Frame> {
        probe!(self.cov);
        let max_locals = self.code.max_locals as usize;
        let mut locals = vec![VType::Top; max_locals];
        let mut slot = 0usize;
        if !self.method_static {
            if probe_branch!(self.cov, max_locals == 0) {
                return fail("instance method with max_locals 0");
            }
            locals[0] = if self.is_init && self.class_name != "java/lang/Object" {
                VType::UninitThis
            } else {
                VType::Ref(self.class_name.clone())
            };
            slot = 1;
        }
        for p in &self.desc.params {
            let vt = vtype_of(p);
            let w = vt.width();
            if probe_branch!(self.cov, slot + w > max_locals) {
                return fail("arguments can't fit into locals");
            }
            locals[slot] = vt;
            if w == 2 {
                locals[slot + 1] = VType::Hi;
            }
            slot += w;
        }
        Ok(Frame {
            locals,
            stack: Vec::new(),
        })
    }

    fn handler_edges(&mut self, frame: &Frame, pc: u32) -> VResult<Vec<(usize, Frame)>> {
        let mut out = Vec::new();
        for e in &self.code.exception_table {
            if (e.start_pc as u32..e.end_pc as u32).contains(&pc) {
                probe!(self.cov);
                let idx = match self.pc_to_idx.get(&(e.handler_pc as u32)) {
                    Some(&i) => i,
                    None => return fail("exception handler target is not an instruction"),
                };
                let catch = if e.catch_type.0 == 0 {
                    "java/lang/Throwable".to_string()
                } else {
                    self.world
                        .user_class(&self.class_name)
                        .and_then(|u| u.cf.constant_pool.class_name(e.catch_type))
                        .unwrap_or_else(|| "java/lang/Throwable".to_string())
                };
                out.push((
                    idx,
                    Frame {
                        locals: frame.locals.clone(),
                        stack: vec![VType::Ref(catch)],
                    },
                ));
            }
        }
        Ok(out)
    }

    fn merge_into(
        &mut self,
        in_frames: &mut BTreeMap<usize, Frame>,
        work: &mut VecDeque<usize>,
        idx: usize,
        frame: Frame,
        is_handler: bool,
    ) -> VResult<()> {
        match in_frames.get_mut(&idx) {
            None => {
                in_frames.insert(idx, frame);
                work.push_back(idx);
            }
            Some(existing) => {
                let merged = self.merge_frames(existing, &frame, is_handler)?;
                if merged != *existing {
                    *existing = merged;
                    work.push_back(idx);
                }
            }
        }
        Ok(())
    }

    fn merge_frames(&mut self, a: &Frame, b: &Frame, is_handler: bool) -> VResult<Frame> {
        probe!(self.cov);
        if probe_branch!(self.cov, a.stack.len() != b.stack.len()) {
            return fail("inconsistent stack height at merge point");
        }
        let mut locals = Vec::with_capacity(a.locals.len());
        for (x, y) in a.locals.iter().zip(&b.locals) {
            locals.push(self.merge_types(x, y, false)?);
        }
        let mut stack = Vec::with_capacity(a.stack.len());
        for (x, y) in a.stack.iter().zip(&b.stack) {
            stack.push(self.merge_types(x, y, !is_handler)?);
        }
        Ok(Frame { locals, stack })
    }

    fn merge_types(&mut self, a: &VType, b: &VType, on_stack: bool) -> VResult<VType> {
        if a == b {
            return Ok(a.clone());
        }
        probe!(self.cov);
        // GIJ: merging initialized and uninitialized types is an error.
        if probe_branch!(
            self.cov,
            self.spec.check_uninit_merge
                && (a.is_uninitialized() != b.is_uninitialized())
                && a.is_reference()
                && b.is_reference()
        ) {
            return fail("merging initialized and uninitialized object types");
        }
        // J9: stack shapes must match exactly at merge points.
        if probe_branch!(self.cov, on_stack && self.spec.strict_stack_shape_merge) {
            return fail("stack shape inconsistent");
        }
        let merged = match (a, b) {
            (VType::Null, VType::Ref(n)) | (VType::Ref(n), VType::Null) => VType::Ref(n.clone()),
            (VType::Ref(x), VType::Ref(y)) => VType::Ref(self.world.common_super(x, y)),
            _ => VType::Top,
        };
        if probe_branch!(self.cov, on_stack && merged == VType::Top) {
            return fail("mismatched stack types at merge point");
        }
        Ok(merged)
    }

    // ----- transfer -----------------------------------------------------

    /// Applies one instruction; returns successor (index, frame) pairs.
    fn transfer(&mut self, idx: usize, mut f: Frame) -> VResult<Vec<(usize, Frame)>> {
        use Opcode::*;
        let insn = self.code.instructions[idx].clone();
        let insn = &insn;
        let pc = self.pcs[idx];
        let mut succs: Vec<(usize, Frame)> = Vec::new();
        let mut falls_through = true;

        macro_rules! branch_to {
            ($target:expr, $f:expr) => {{
                let t: u32 = $target;
                match self.pc_to_idx.get(&t) {
                    Some(&i) => succs.push((i, $f)),
                    None => return fail(format!("branch target {t} is not an instruction")),
                }
            }};
        }

        match insn {
            Instruction::Simple(op) => match op {
                Nop => {}
                AconstNull => self.push(&mut f, VType::Null)?,
                IconstM1 | Iconst0 | Iconst1 | Iconst2 | Iconst3 | Iconst4 | Iconst5 => {
                    self.push(&mut f, VType::Int)?
                }
                Lconst0 | Lconst1 => self.push_wide(&mut f, VType::Long)?,
                Fconst0 | Fconst1 | Fconst2 => self.push(&mut f, VType::Float)?,
                Dconst0 | Dconst1 => self.push_wide(&mut f, VType::Double)?,
                Iload0 | Iload1 | Iload2 | Iload3 => {
                    self.load(&mut f, (op.byte() - Iload0.byte()) as u16, VType::Int)?
                }
                Lload0 | Lload1 | Lload2 | Lload3 => {
                    self.load(&mut f, (op.byte() - Lload0.byte()) as u16, VType::Long)?
                }
                Fload0 | Fload1 | Fload2 | Fload3 => {
                    self.load(&mut f, (op.byte() - Fload0.byte()) as u16, VType::Float)?
                }
                Dload0 | Dload1 | Dload2 | Dload3 => {
                    self.load(&mut f, (op.byte() - Dload0.byte()) as u16, VType::Double)?
                }
                Aload0 | Aload1 | Aload2 | Aload3 => {
                    self.load_ref(&mut f, (op.byte() - Aload0.byte()) as u16)?
                }
                Istore0 | Istore1 | Istore2 | Istore3 => {
                    self.store(&mut f, (op.byte() - Istore0.byte()) as u16, VType::Int)?
                }
                Lstore0 | Lstore1 | Lstore2 | Lstore3 => {
                    self.store(&mut f, (op.byte() - Lstore0.byte()) as u16, VType::Long)?
                }
                Fstore0 | Fstore1 | Fstore2 | Fstore3 => {
                    self.store(&mut f, (op.byte() - Fstore0.byte()) as u16, VType::Float)?
                }
                Dstore0 | Dstore1 | Dstore2 | Dstore3 => {
                    self.store(&mut f, (op.byte() - Dstore0.byte()) as u16, VType::Double)?
                }
                Astore0 | Astore1 | Astore2 | Astore3 => {
                    self.store_ref(&mut f, (op.byte() - Astore0.byte()) as u16)?
                }
                Iaload | Baload | Caload | Saload => {
                    self.expect(&mut f, VType::Int)?;
                    self.expect_array(&mut f)?;
                    self.push(&mut f, VType::Int)?;
                }
                Laload => {
                    self.expect(&mut f, VType::Int)?;
                    self.expect_array(&mut f)?;
                    self.push_wide(&mut f, VType::Long)?;
                }
                Faload => {
                    self.expect(&mut f, VType::Int)?;
                    self.expect_array(&mut f)?;
                    self.push(&mut f, VType::Float)?;
                }
                Daload => {
                    self.expect(&mut f, VType::Int)?;
                    self.expect_array(&mut f)?;
                    self.push_wide(&mut f, VType::Double)?;
                }
                Aaload => {
                    self.expect(&mut f, VType::Int)?;
                    let arr = self.expect_array(&mut f)?;
                    self.push(&mut f, array_element(&arr))?;
                }
                Iastore | Bastore | Castore | Sastore => {
                    self.expect(&mut f, VType::Int)?;
                    self.expect(&mut f, VType::Int)?;
                    self.expect_array(&mut f)?;
                }
                Lastore => {
                    self.expect_wide(&mut f, VType::Long)?;
                    self.expect(&mut f, VType::Int)?;
                    self.expect_array(&mut f)?;
                }
                Fastore => {
                    self.expect(&mut f, VType::Float)?;
                    self.expect(&mut f, VType::Int)?;
                    self.expect_array(&mut f)?;
                }
                Dastore => {
                    self.expect_wide(&mut f, VType::Double)?;
                    self.expect(&mut f, VType::Int)?;
                    self.expect_array(&mut f)?;
                }
                Aastore => {
                    self.expect_ref(&mut f, true)?;
                    self.expect(&mut f, VType::Int)?;
                    self.expect_array(&mut f)?;
                }
                Pop => {
                    let t = self.pop(&mut f)?;
                    if probe_branch!(self.cov, t.width() == 2 || t == VType::Hi) {
                        return fail("pop on a category-2 value");
                    }
                }
                Pop2 => {
                    self.pop(&mut f)?;
                    self.pop(&mut f)?;
                }
                Dup => {
                    let t = self.pop(&mut f)?;
                    if probe_branch!(self.cov, t == VType::Hi) {
                        return fail("dup splits a category-2 value");
                    }
                    self.push(&mut f, t.clone())?;
                    self.push(&mut f, t)?;
                }
                DupX1 => {
                    let a = self.pop1(&mut f)?;
                    let b = self.pop1(&mut f)?;
                    self.push(&mut f, a.clone())?;
                    self.push(&mut f, b)?;
                    self.push(&mut f, a)?;
                }
                DupX2 => {
                    let a = self.pop1(&mut f)?;
                    let b = self.pop(&mut f)?;
                    let c = self.pop(&mut f)?;
                    self.push(&mut f, a.clone())?;
                    self.push(&mut f, c)?;
                    self.push(&mut f, b)?;
                    self.push(&mut f, a)?;
                }
                Dup2 => {
                    let a = self.pop(&mut f)?;
                    let b = self.pop(&mut f)?;
                    self.push(&mut f, b.clone())?;
                    self.push(&mut f, a.clone())?;
                    self.push(&mut f, b)?;
                    self.push(&mut f, a)?;
                }
                Dup2X1 => {
                    let a = self.pop(&mut f)?;
                    let b = self.pop(&mut f)?;
                    let c = self.pop1(&mut f)?;
                    self.push(&mut f, b.clone())?;
                    self.push(&mut f, a.clone())?;
                    self.push(&mut f, c)?;
                    self.push(&mut f, b)?;
                    self.push(&mut f, a)?;
                }
                Dup2X2 => {
                    let a = self.pop(&mut f)?;
                    let b = self.pop(&mut f)?;
                    let c = self.pop(&mut f)?;
                    let d = self.pop(&mut f)?;
                    self.push(&mut f, b.clone())?;
                    self.push(&mut f, a.clone())?;
                    self.push(&mut f, d)?;
                    self.push(&mut f, c)?;
                    self.push(&mut f, b)?;
                    self.push(&mut f, a)?;
                }
                Swap => {
                    let a = self.pop1(&mut f)?;
                    let b = self.pop1(&mut f)?;
                    self.push(&mut f, a)?;
                    self.push(&mut f, b)?;
                }
                Iadd | Isub | Imul | Idiv | Irem | Ishl | Ishr | Iushr | Iand | Ior | Ixor => {
                    self.expect(&mut f, VType::Int)?;
                    self.expect(&mut f, VType::Int)?;
                    self.push(&mut f, VType::Int)?;
                }
                Ladd | Lsub | Lmul | Ldiv | Lrem | Land | Lor | Lxor => {
                    self.expect_wide(&mut f, VType::Long)?;
                    self.expect_wide(&mut f, VType::Long)?;
                    self.push_wide(&mut f, VType::Long)?;
                }
                Lshl | Lshr | Lushr => {
                    self.expect(&mut f, VType::Int)?;
                    self.expect_wide(&mut f, VType::Long)?;
                    self.push_wide(&mut f, VType::Long)?;
                }
                Fadd | Fsub | Fmul | Fdiv | Frem => {
                    self.expect(&mut f, VType::Float)?;
                    self.expect(&mut f, VType::Float)?;
                    self.push(&mut f, VType::Float)?;
                }
                Dadd | Dsub | Dmul | Ddiv | Drem => {
                    self.expect_wide(&mut f, VType::Double)?;
                    self.expect_wide(&mut f, VType::Double)?;
                    self.push_wide(&mut f, VType::Double)?;
                }
                Ineg => {
                    self.expect(&mut f, VType::Int)?;
                    self.push(&mut f, VType::Int)?;
                }
                Lneg => {
                    self.expect_wide(&mut f, VType::Long)?;
                    self.push_wide(&mut f, VType::Long)?;
                }
                Fneg => {
                    self.expect(&mut f, VType::Float)?;
                    self.push(&mut f, VType::Float)?;
                }
                Dneg => {
                    self.expect_wide(&mut f, VType::Double)?;
                    self.push_wide(&mut f, VType::Double)?;
                }
                I2l => {
                    self.expect(&mut f, VType::Int)?;
                    self.push_wide(&mut f, VType::Long)?;
                }
                I2f => {
                    self.expect(&mut f, VType::Int)?;
                    self.push(&mut f, VType::Float)?;
                }
                I2d => {
                    self.expect(&mut f, VType::Int)?;
                    self.push_wide(&mut f, VType::Double)?;
                }
                L2i => {
                    self.expect_wide(&mut f, VType::Long)?;
                    self.push(&mut f, VType::Int)?;
                }
                L2f => {
                    self.expect_wide(&mut f, VType::Long)?;
                    self.push(&mut f, VType::Float)?;
                }
                L2d => {
                    self.expect_wide(&mut f, VType::Long)?;
                    self.push_wide(&mut f, VType::Double)?;
                }
                F2i => {
                    self.expect(&mut f, VType::Float)?;
                    self.push(&mut f, VType::Int)?;
                }
                F2l => {
                    self.expect(&mut f, VType::Float)?;
                    self.push_wide(&mut f, VType::Long)?;
                }
                F2d => {
                    self.expect(&mut f, VType::Float)?;
                    self.push_wide(&mut f, VType::Double)?;
                }
                D2i => {
                    self.expect_wide(&mut f, VType::Double)?;
                    self.push(&mut f, VType::Int)?;
                }
                D2l => {
                    self.expect_wide(&mut f, VType::Double)?;
                    self.push_wide(&mut f, VType::Long)?;
                }
                D2f => {
                    self.expect_wide(&mut f, VType::Double)?;
                    self.push(&mut f, VType::Float)?;
                }
                I2b | I2c | I2s => {
                    self.expect(&mut f, VType::Int)?;
                    self.push(&mut f, VType::Int)?;
                }
                Lcmp => {
                    self.expect_wide(&mut f, VType::Long)?;
                    self.expect_wide(&mut f, VType::Long)?;
                    self.push(&mut f, VType::Int)?;
                }
                Fcmpl | Fcmpg => {
                    self.expect(&mut f, VType::Float)?;
                    self.expect(&mut f, VType::Float)?;
                    self.push(&mut f, VType::Int)?;
                }
                Dcmpl | Dcmpg => {
                    self.expect_wide(&mut f, VType::Double)?;
                    self.expect_wide(&mut f, VType::Double)?;
                    self.push(&mut f, VType::Int)?;
                }
                Ireturn => {
                    self.check_return(&mut f, Some(VType::Int))?;
                    falls_through = false;
                }
                Lreturn => {
                    self.check_return(&mut f, Some(VType::Long))?;
                    falls_through = false;
                }
                Freturn => {
                    self.check_return(&mut f, Some(VType::Float))?;
                    falls_through = false;
                }
                Dreturn => {
                    self.check_return(&mut f, Some(VType::Double))?;
                    falls_through = false;
                }
                Areturn => {
                    self.check_return(&mut f, Some(VType::Null))?;
                    falls_through = false;
                }
                Return => {
                    self.check_return(&mut f, None)?;
                    falls_through = false;
                }
                Arraylength => {
                    self.expect_array(&mut f)?;
                    self.push(&mut f, VType::Int)?;
                }
                Athrow => {
                    let t = self.expect_ref(&mut f, false)?;
                    if probe_branch!(self.cov, t.is_uninitialized()) {
                        return fail("throwing an uninitialized object");
                    }
                    falls_through = false;
                }
                Monitorenter | Monitorexit => {
                    self.expect_ref(&mut f, false)?;
                }
                other => {
                    probe!(self.cov);
                    return fail(format!("unexpected operand-free opcode {other}"));
                }
            },
            Instruction::Bipush(_) | Instruction::Sipush(_) => self.push(&mut f, VType::Int)?,
            Instruction::Ldc(cpi) | Instruction::LdcW(cpi) => {
                use classfuzz_classfile::Constant;
                probe!(self.cov);
                let user = self.world.user_class(&self.class_name);
                let entry = user.and_then(|u| u.cf.constant_pool.entry(*cpi)).cloned();
                match entry {
                    Some(Constant::Integer(_)) => self.push(&mut f, VType::Int)?,
                    Some(Constant::Float(_)) => self.push(&mut f, VType::Float)?,
                    Some(Constant::String(_)) => {
                        self.push(&mut f, VType::Ref("java/lang/String".into()))?
                    }
                    Some(Constant::Class(_)) => {
                        self.push(&mut f, VType::Ref("java/lang/Class".into()))?
                    }
                    _ => return fail("ldc references an unloadable constant"),
                }
            }
            Instruction::Ldc2W(cpi) => {
                use classfuzz_classfile::Constant;
                let user = self.world.user_class(&self.class_name);
                let entry = user.and_then(|u| u.cf.constant_pool.entry(*cpi)).cloned();
                match entry {
                    Some(Constant::Long(_)) => self.push_wide(&mut f, VType::Long)?,
                    Some(Constant::Double(_)) => self.push_wide(&mut f, VType::Double)?,
                    _ => return fail("ldc2_w references a non-wide constant"),
                }
            }
            Instruction::Local(op, slot) => match op {
                Iload => self.load(&mut f, *slot, VType::Int)?,
                Lload => self.load(&mut f, *slot, VType::Long)?,
                Fload => self.load(&mut f, *slot, VType::Float)?,
                Dload => self.load(&mut f, *slot, VType::Double)?,
                Aload => self.load_ref(&mut f, *slot)?,
                Istore => self.store(&mut f, *slot, VType::Int)?,
                Lstore => self.store(&mut f, *slot, VType::Long)?,
                Fstore => self.store(&mut f, *slot, VType::Float)?,
                Dstore => self.store(&mut f, *slot, VType::Double)?,
                Astore => self.store_ref(&mut f, *slot)?,
                Ret => return fail("jsr/ret are not permitted in version 51 classfiles"),
                other => return fail(format!("bad local-variable opcode {other}")),
            },
            Instruction::Iinc { index, .. } => {
                self.check_local(&mut f, *index, &VType::Int)?;
            }
            Instruction::Branch(op, target) => match op {
                Goto | GotoW => {
                    branch_to!(*target, f.clone());
                    falls_through = false;
                }
                Jsr | JsrW => return fail("jsr/ret are not permitted in version 51 classfiles"),
                Ifeq | Ifne | Iflt | Ifge | Ifgt | Ifle => {
                    self.expect(&mut f, VType::Int)?;
                    branch_to!(*target, f.clone());
                }
                IfIcmpeq | IfIcmpne | IfIcmplt | IfIcmpge | IfIcmpgt | IfIcmple => {
                    self.expect(&mut f, VType::Int)?;
                    self.expect(&mut f, VType::Int)?;
                    branch_to!(*target, f.clone());
                }
                IfAcmpeq | IfAcmpne => {
                    self.expect_ref(&mut f, false)?;
                    self.expect_ref(&mut f, false)?;
                    branch_to!(*target, f.clone());
                }
                Ifnull | Ifnonnull => {
                    self.expect_ref(&mut f, false)?;
                    branch_to!(*target, f.clone());
                }
                other => return fail(format!("bad branch opcode {other}")),
            },
            Instruction::Field(op, cpi) => {
                probe!(self.cov);
                let (_, _, desc) = self.member(*cpi, "field")?;
                let ft = FieldType::parse(&desc)
                    .map_err(|_| VerifyFail(format!("bad field descriptor {desc:?}")))?;
                let vt = vtype_of(&ft);
                match op {
                    Getstatic => self.push_any(&mut f, vt)?,
                    Putstatic => self.expect_assignable(&mut f, &ft)?,
                    Getfield => {
                        let recv = self.expect_ref(&mut f, false)?;
                        if probe_branch!(self.cov, recv.is_uninitialized()) {
                            return fail("field access on uninitialized object");
                        }
                        self.push_any(&mut f, vt)?;
                    }
                    Putfield => {
                        self.expect_assignable(&mut f, &ft)?;
                        let recv = self.expect_ref(&mut f, false)?;
                        // putfield on `this` before super() is legal only
                        // for fields of the current class; we allow it.
                        if probe_branch!(self.cov, matches!(recv, VType::Uninit(_))) {
                            return fail("putfield on uninitialized object");
                        }
                    }
                    other => return fail(format!("bad field opcode {other}")),
                }
            }
            Instruction::Invoke(op, cpi) => {
                let kind = match op {
                    Invokevirtual => InvokeShape::Virtual,
                    Invokespecial => InvokeShape::Special,
                    Invokestatic => InvokeShape::Static,
                    other => return fail(format!("bad invoke opcode {other}")),
                };
                self.invoke(&mut f, *cpi, kind)?;
            }
            Instruction::InvokeInterface { index, .. } => {
                self.invoke(&mut f, *index, InvokeShape::Interface)?;
            }
            Instruction::InvokeDynamic(_) => {
                return fail("invokedynamic is not supported by this VM generation")
            }
            Instruction::New(cpi) => {
                let name = self.class_at(*cpi)?;
                if probe_branch!(self.cov, self.world.is_interface(&name) == Some(true)) {
                    return fail(format!("new of interface {name}"));
                }
                self.push(&mut f, VType::Uninit(pc))?;
            }
            Instruction::NewArray(atype) => {
                if probe_branch!(self.cov, !(4..=11).contains(atype)) {
                    return fail(format!("newarray with bad type code {atype}"));
                }
                self.expect(&mut f, VType::Int)?;
                let desc = match atype {
                    4 => "[Z",
                    5 => "[C",
                    6 => "[F",
                    7 => "[D",
                    8 => "[B",
                    9 => "[S",
                    10 => "[I",
                    _ => "[J",
                };
                self.push(&mut f, VType::Ref(desc.to_string()))?;
            }
            Instruction::ANewArray(cpi) => {
                let name = self.class_at(*cpi)?;
                self.expect(&mut f, VType::Int)?;
                let desc = if name.starts_with('[') {
                    format!("[{name}")
                } else {
                    format!("[L{name};")
                };
                self.push(&mut f, VType::Ref(desc))?;
            }
            Instruction::CheckCast(cpi) => {
                let name = self.class_at(*cpi)?;
                let v = self.expect_ref(&mut f, false)?;
                if probe_branch!(self.cov, v.is_uninitialized()) {
                    return fail("checkcast on uninitialized object");
                }
                self.push(&mut f, VType::Ref(name))?;
            }
            Instruction::InstanceOf(cpi) => {
                let _ = self.class_at(*cpi)?;
                let v = self.expect_ref(&mut f, false)?;
                if probe_branch!(self.cov, v.is_uninitialized()) {
                    return fail("instanceof on uninitialized object");
                }
                self.push(&mut f, VType::Int)?;
            }
            Instruction::MultiANewArray { dims, .. } => {
                if probe_branch!(self.cov, *dims == 0) {
                    return fail("multianewarray with zero dimensions");
                }
                for _ in 0..*dims {
                    self.expect(&mut f, VType::Int)?;
                }
                self.push(&mut f, VType::Ref("[Ljava/lang/Object;".into()))?;
            }
            Instruction::TableSwitch(ts) => {
                self.expect(&mut f, VType::Int)?;
                branch_to!(ts.default, f.clone());
                for t in &ts.targets {
                    branch_to!(*t, f.clone());
                }
                falls_through = false;
            }
            Instruction::LookupSwitch(ls) => {
                self.expect(&mut f, VType::Int)?;
                branch_to!(ls.default, f.clone());
                for (_, t) in &ls.pairs {
                    branch_to!(*t, f.clone());
                }
                falls_through = false;
            }
        }

        if falls_through {
            probe!(self.cov);
            if probe_branch!(self.cov, idx + 1 >= self.code.instructions.len()) {
                return fail("execution falls off the end of the code");
            }
            succs.push((idx + 1, f));
        }
        Ok(succs)
    }

    // ----- stack/local helpers -------------------------------------------

    fn push(&mut self, f: &mut Frame, t: VType) -> VResult<()> {
        if probe_branch!(self.cov, f.stack.len() + 1 > self.code.max_stack as usize) {
            return fail("operand stack overflow (exceeds declared max_stack)");
        }
        f.stack.push(t);
        Ok(())
    }

    fn push_wide(&mut self, f: &mut Frame, t: VType) -> VResult<()> {
        if probe_branch!(self.cov, f.stack.len() + 2 > self.code.max_stack as usize) {
            return fail("operand stack overflow (exceeds declared max_stack)");
        }
        f.stack.push(t);
        f.stack.push(VType::Hi);
        Ok(())
    }

    fn push_any(&mut self, f: &mut Frame, t: VType) -> VResult<()> {
        if t.width() == 2 {
            self.push_wide(f, t)
        } else {
            self.push(f, t)
        }
    }

    fn pop(&mut self, f: &mut Frame) -> VResult<VType> {
        match f.stack.pop() {
            Some(t) => Ok(t),
            None => {
                probe!(self.cov);
                fail("operand stack underflow")
            }
        }
    }

    /// Pops a category-1 value.
    fn pop1(&mut self, f: &mut Frame) -> VResult<VType> {
        let t = self.pop(f)?;
        if probe_branch!(self.cov, t == VType::Hi || t.width() == 2) {
            return fail("expected a category-1 value");
        }
        Ok(t)
    }

    fn expect(&mut self, f: &mut Frame, want: VType) -> VResult<()> {
        let got = self.pop(f)?;
        if probe_branch!(self.cov, got != want) {
            return fail(format!("expected {want:?} on stack, found {got:?}"));
        }
        Ok(())
    }

    fn expect_wide(&mut self, f: &mut Frame, want: VType) -> VResult<()> {
        let hi = self.pop(f)?;
        if probe_branch!(self.cov, hi != VType::Hi) {
            return fail("expected the upper half of a category-2 value");
        }
        self.expect(f, want)
    }

    fn expect_ref(&mut self, f: &mut Frame, _allow_null_only: bool) -> VResult<VType> {
        let got = self.pop(f)?;
        if probe_branch!(self.cov, !got.is_reference()) {
            return fail(format!("expected a reference on stack, found {got:?}"));
        }
        Ok(got)
    }

    fn expect_array(&mut self, f: &mut Frame) -> VResult<VType> {
        let got = self.expect_ref(f, false)?;
        let ok = matches!(&got, VType::Null) || matches!(&got, VType::Ref(n) if n.starts_with('['));
        if probe_branch!(self.cov, !ok) {
            return fail(format!("expected an array reference, found {got:?}"));
        }
        Ok(got)
    }

    /// Pops a value that must be assignable to the field type `ft`.
    fn expect_assignable(&mut self, f: &mut Frame, ft: &FieldType) -> VResult<()> {
        let want = vtype_of(ft);
        if want.width() == 2 {
            return self.expect_wide(f, want);
        }
        let got = self.pop(f)?;
        self.check_assignable(&got, ft)
    }

    fn check_assignable(&mut self, got: &VType, ft: &FieldType) -> VResult<()> {
        let want = vtype_of(ft);
        probe!(self.cov);
        match (&want, got) {
            (VType::Int, VType::Int)
            | (VType::Float, VType::Float)
            | (VType::Long, VType::Long)
            | (VType::Double, VType::Double) => Ok(()),
            (VType::Ref(_), VType::Null) => Ok(()),
            (VType::Ref(target), VType::Ref(src)) => {
                let both_known = self.world.exists(target) && self.world.exists(src);
                if probe_branch!(self.cov, both_known) {
                    if probe_branch!(self.cov, self.world.is_subtype(src, target)) {
                        Ok(())
                    } else if self.spec.check_param_cast {
                        // GIJ: provably incompatible reference types.
                        fail(format!(
                            "incompatible type: {src} is not assignable to {target}"
                        ))
                    } else if probe_branch!(self.cov, self.world.is_interface(target) == Some(true))
                    {
                        // Interfaces are checked at runtime, not by the
                        // verifier (JVMS: invokeinterface does the check).
                        Ok(())
                    } else if self.world.is_subtype(target, src) {
                        // Downcast-shaped flows are tolerated by the lenient
                        // inference verifier.
                        Ok(())
                    } else {
                        fail(format!("{src} is not assignable to {target}"))
                    }
                } else if probe_branch!(self.cov, self.spec.check_param_cast) {
                    // Strict mode: unknown classes are compatible only
                    // nominally.
                    if src == target || target == "java/lang/Object" {
                        Ok(())
                    } else {
                        fail(format!(
                            "cannot prove {src} assignable to {target} (unsafe type casting)"
                        ))
                    }
                } else {
                    Ok(()) // lenient: assume assignable, resolve at runtime
                }
            }
            (VType::Ref(_), v) if v.is_uninitialized() => {
                fail("using an uninitialized object where a value is required")
            }
            _ => fail(format!("expected {want:?}, found {got:?}")),
        }
    }

    fn check_local(&mut self, f: &mut Frame, slot: u16, want: &VType) -> VResult<()> {
        let slot = slot as usize;
        if probe_branch!(self.cov, slot >= f.locals.len()) {
            return fail("local variable index out of bounds");
        }
        if probe_branch!(self.cov, &f.locals[slot] != want) {
            return fail(format!(
                "local {slot} holds {:?}, expected {want:?}",
                f.locals[slot]
            ));
        }
        Ok(())
    }

    fn load(&mut self, f: &mut Frame, slot: u16, want: VType) -> VResult<()> {
        let wide = want.width() == 2;
        self.check_local(f, slot, &want)?;
        if wide {
            if probe_branch!(
                self.cov,
                f.locals.get(slot as usize + 1) != Some(&VType::Hi)
            ) {
                return fail("category-2 local is missing its upper half");
            }
            self.push_wide(f, want)
        } else {
            self.push(f, want)
        }
    }

    fn load_ref(&mut self, f: &mut Frame, slot: u16) -> VResult<()> {
        let slot_us = slot as usize;
        if probe_branch!(self.cov, slot_us >= f.locals.len()) {
            return fail("local variable index out of bounds");
        }
        let t = f.locals[slot_us].clone();
        if probe_branch!(self.cov, !t.is_reference()) {
            return fail(format!("aload of non-reference local {slot} ({t:?})"));
        }
        self.push(f, t)
    }

    fn store(&mut self, f: &mut Frame, slot: u16, want: VType) -> VResult<()> {
        let wide = want.width() == 2;
        if wide {
            self.expect_wide(f, want.clone())?;
        } else {
            self.expect(f, want.clone())?;
        }
        self.set_local(f, slot, want)
    }

    fn store_ref(&mut self, f: &mut Frame, slot: u16) -> VResult<()> {
        let t = self.expect_ref(f, false)?;
        self.set_local(f, slot, t)
    }

    fn set_local(&mut self, f: &mut Frame, slot: u16, t: VType) -> VResult<()> {
        let slot = slot as usize;
        let w = t.width();
        if probe_branch!(self.cov, slot + w > f.locals.len()) {
            return fail("local variable index out of bounds for store");
        }
        // Clobber the other half of any wide value we are overwriting.
        if slot > 0 && f.locals[slot] == VType::Hi {
            f.locals[slot - 1] = VType::Top;
        }
        if w == 2 {
            f.locals[slot] = t;
            f.locals[slot + 1] = VType::Hi;
        } else {
            if f.locals[slot].width() == 2 && slot + 1 < f.locals.len() {
                f.locals[slot + 1] = VType::Top;
            }
            f.locals[slot] = t;
        }
        Ok(())
    }

    fn check_return(&mut self, f: &mut Frame, kind: Option<VType>) -> VResult<()> {
        probe!(self.cov);
        let ret_ty = self.desc.ret.clone();
        match (&ret_ty, kind) {
            (None, None) => {}
            (Some(_), None) => return fail("return in a method expecting a value"),
            (None, Some(_)) => return fail("value return in a void method"),
            (Some(ret), Some(VType::Null)) => {
                // areturn: pop a reference assignable to the return type.
                let got = self.expect_ref(f, false)?;
                if probe_branch!(self.cov, got.is_uninitialized()) {
                    return fail("returning an uninitialized object");
                }
                let ret = ret.clone();
                if let (VType::Ref(_), FieldType::Object(_) | FieldType::Array(_)) = (&got, &ret) {
                    self.check_assignable(&got, &ret)?;
                } else if !matches!(ret, FieldType::Object(_) | FieldType::Array(_)) {
                    return fail("areturn in a method returning a primitive");
                }
            }
            (Some(ret), Some(want)) => {
                let ret_v = vtype_of(ret);
                if probe_branch!(self.cov, ret_v != want) {
                    return fail(format!(
                        "return opcode for {want:?} in a method returning {ret_v:?}"
                    ));
                }
                if want.width() == 2 {
                    self.expect_wide(f, want)?;
                } else {
                    self.expect(f, want)?;
                }
            }
        }
        // In <init>, `this` must be initialized before any return.
        if probe_branch!(
            self.cov,
            self.is_init && f.locals.first() == Some(&VType::UninitThis)
        ) {
            return fail("constructor returns before calling super()");
        }
        Ok(())
    }

    // ----- constant-pool helpers ------------------------------------------

    fn class_at(&mut self, cpi: classfuzz_classfile::ConstIndex) -> VResult<String> {
        let user = self.world.user_class(&self.class_name);
        match user.and_then(|u| u.cf.constant_pool.class_name(cpi)) {
            Some(n) => Ok(n),
            None => {
                probe!(self.cov);
                fail(format!("constant pool entry {cpi} is not a class"))
            }
        }
    }

    fn member(
        &mut self,
        cpi: classfuzz_classfile::ConstIndex,
        what: &str,
    ) -> VResult<(String, String, String)> {
        let user = self.world.user_class(&self.class_name);
        match user.and_then(|u| u.cf.constant_pool.member_ref_parts(cpi)) {
            Some(parts) => Ok(parts),
            None => {
                probe!(self.cov);
                fail(format!(
                    "constant pool entry {cpi} is not a {what} reference"
                ))
            }
        }
    }

    fn invoke(
        &mut self,
        f: &mut Frame,
        cpi: classfuzz_classfile::ConstIndex,
        shape: InvokeShape,
    ) -> VResult<()> {
        probe!(self.cov);
        let (class, name, desc_text) = self.member(cpi, "method")?;
        let desc = MethodDescriptor::parse(&desc_text)
            .map_err(|_| VerifyFail(format!("bad method descriptor {desc_text:?}")))?;
        if probe_branch!(self.cov, name == "<init>" && shape != InvokeShape::Special) {
            return fail("<init> may only be invoked by invokespecial");
        }
        // Pop arguments right-to-left, checking assignability — the check
        // GIJ applies strictly (Problem 2's M1433982529 example).
        for p in desc.params.iter().rev() {
            self.expect_assignable(f, p)?;
        }
        // Receiver.
        if shape != InvokeShape::Static {
            let recv = self.expect_ref(f, false)?;
            if name == "<init>" {
                probe!(self.cov);
                match recv {
                    VType::Uninit(alloc_pc) => {
                        replace_types(f, &VType::Uninit(alloc_pc), VType::Ref(class.clone()));
                    }
                    VType::UninitThis => {
                        let this = self.class_name.clone();
                        replace_types(f, &VType::UninitThis, VType::Ref(this));
                    }
                    _ => {
                        probe!(self.cov);
                        return fail("<init> called on an initialized object");
                    }
                }
            } else if probe_branch!(self.cov, recv.is_uninitialized()) {
                return fail("method invocation on uninitialized object");
            } else if let VType::Ref(recv_name) = &recv {
                // Receiver compatibility — lenient about unknown classes.
                let both_known = self.world.exists(recv_name) && self.world.exists(&class);
                let iface_target = self.world.is_interface(&class) == Some(true);
                if probe_branch!(
                    self.cov,
                    both_known
                        && !iface_target
                        && !class.starts_with('[')
                        && !recv_name.starts_with('[')
                        && !self.world.is_subtype(recv_name, &class)
                        && !self.world.is_subtype(&class, recv_name)
                ) {
                    return fail(format!("receiver {recv_name} is incompatible with {class}"));
                }
            }
        }
        if let Some(ret) = &desc.ret {
            self.push_any(f, vtype_of(ret))?;
        }
        Ok(())
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InvokeShape {
    Virtual,
    Special,
    Static,
    Interface,
}

fn replace_types(f: &mut Frame, from: &VType, to: VType) {
    for slot in f.locals.iter_mut().chain(f.stack.iter_mut()) {
        if slot == from {
            *slot = to.clone();
        }
    }
}

fn array_element(arr: &VType) -> VType {
    match arr {
        VType::Ref(n) if n.starts_with('[') => {
            let elem = &n[1..];
            match FieldType::parse(elem) {
                Ok(ft) => vtype_of(&ft),
                Err(_) => VType::Ref("java/lang/Object".into()),
            }
        }
        _ => VType::Ref("java/lang/Object".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use classfuzz_jimple::{lower::lower_class, IrClass};

    fn verify(class: &IrClass, spec: &VmSpec) -> Result<(), Outcome> {
        let user = UserClass::summarize(lower_class(class));
        let world = World::new(spec, vec![user]);
        let user = world.user_class(&class.name).unwrap();
        verify_class(&world, user, spec, &mut Cov::disabled())
    }

    #[test]
    fn valid_hello_verifies_on_all() {
        let c = IrClass::with_hello_main("v/Hello", "Completed!");
        for spec in VmSpec::all_five() {
            assert!(
                verify(&c, &spec).is_ok(),
                "{} rejected valid code",
                spec.name
            );
        }
    }

    #[test]
    fn type_confused_local_fails_verification() {
        use classfuzz_jimple::*;
        // The paper's Table 2 local-variable mutation: declare the local as
        // String but store an int into it; the later aload sees an Int slot.
        let mut c = IrClass::new("v/Conf");
        let mut body = Body::new();
        body.declare("x", JType::string());
        body.stmts.push(Stmt::Assign {
            target: Target::Local("x".into()),
            value: Expr::Use(Value::int(3)),
        });
        body.stmts.push(Stmt::Assign {
            target: Target::Local("y".into()),
            value: Expr::Use(Value::local("x")), // aload of an Int slot
        });
        body.declare("y", JType::string());
        body.stmts.push(Stmt::Return(None));
        c.methods.push(IrMethod {
            access: classfuzz_classfile::MethodAccess::PUBLIC
                | classfuzz_classfile::MethodAccess::STATIC,
            name: "m".into(),
            params: vec![],
            ret: None,
            exceptions: vec![],
            body: Some(body),
        });
        let out = verify(&c, &VmSpec::hotspot9());
        assert!(matches!(
            out,
            Err(Outcome::Rejected { phase: Phase::Linking, ref error })
                if error.kind == JvmErrorKind::VerifyError
        ));
    }

    #[test]
    fn problem2_param_cast_gij_strict_hotspot_lenient() {
        use classfuzz_jimple::*;
        // M1433982529: pass a String where an unknown class declares Map.
        let mut c = IrClass::new("v/M1433982529");
        let mut body = Body::new();
        body.declare("s", JType::string());
        body.stmts.push(Stmt::Assign {
            target: Target::Local("s".into()),
            value: Expr::Use(Value::str("x")),
        });
        body.stmts.push(Stmt::Invoke(InvokeExpr {
            kind: InvokeKind::Static,
            class: "unknown/Helper".into(),
            name: "getBoolean".into(),
            params: vec![JType::object("java/util/Map")],
            ret: Some(JType::Boolean),
            receiver: None,
            args: vec![Value::local("s")],
        }));
        body.stmts.push(Stmt::Return(None));
        c.methods.push(IrMethod {
            access: classfuzz_classfile::MethodAccess::PUBLIC
                | classfuzz_classfile::MethodAccess::STATIC,
            name: "m".into(),
            params: vec![],
            ret: None,
            exceptions: vec![],
            body: Some(body),
        });
        assert!(
            verify(&c, &VmSpec::hotspot9()).is_ok(),
            "HotSpot misses the bad cast"
        );
        assert!(
            verify(&c, &VmSpec::gij()).is_err(),
            "GIJ catches the bad cast"
        );
    }

    #[test]
    fn stack_underflow_detected() {
        use classfuzz_classfile::attributes::CodeAttribute;
        use classfuzz_classfile::{Instruction, MethodAccess, Opcode};
        let cf = classfuzz_classfile::ClassFile::builder("v/Under")
            .super_class("java/lang/Object")
            .method(
                MethodAccess::STATIC,
                "m",
                "()V",
                CodeAttribute {
                    max_stack: 2,
                    max_locals: 0,
                    instructions: vec![
                        Instruction::Simple(Opcode::Pop),
                        Instruction::Simple(Opcode::Return),
                    ],
                    exception_table: vec![],
                    attributes: vec![],
                },
            )
            .build();
        let spec = VmSpec::hotspot9();
        let user = UserClass::summarize(cf);
        let world = World::new(&spec, vec![]);
        let m = user.methods[0].clone();
        assert!(verify_method(&world, &user, &m, &spec, &mut Cov::disabled()).is_err());
    }

    #[test]
    fn falling_off_end_detected() {
        use classfuzz_classfile::attributes::CodeAttribute;
        use classfuzz_classfile::{Instruction, MethodAccess, Opcode};
        let cf = classfuzz_classfile::ClassFile::builder("v/Fall")
            .super_class("java/lang/Object")
            .method(
                MethodAccess::STATIC,
                "m",
                "()V",
                CodeAttribute {
                    max_stack: 1,
                    max_locals: 0,
                    instructions: vec![Instruction::Simple(Opcode::Iconst0)],
                    exception_table: vec![],
                    attributes: vec![],
                },
            )
            .build();
        let spec = VmSpec::hotspot9();
        let user = UserClass::summarize(cf);
        let world = World::new(&spec, vec![]);
        let m = user.methods[0].clone();
        let err = verify_method(&world, &user, &m, &spec, &mut Cov::disabled());
        assert!(matches!(err, Err(Outcome::Rejected { .. })));
    }

    #[test]
    fn declared_max_stack_enforced() {
        use classfuzz_classfile::attributes::CodeAttribute;
        use classfuzz_classfile::{Instruction, MethodAccess, Opcode};
        let cf = classfuzz_classfile::ClassFile::builder("v/Deep")
            .super_class("java/lang/Object")
            .method(
                MethodAccess::STATIC,
                "m",
                "()V",
                CodeAttribute {
                    max_stack: 1,
                    max_locals: 0,
                    instructions: vec![
                        Instruction::Simple(Opcode::Iconst0),
                        Instruction::Simple(Opcode::Iconst1),
                        Instruction::Simple(Opcode::Pop),
                        Instruction::Simple(Opcode::Pop),
                        Instruction::Simple(Opcode::Return),
                    ],
                    exception_table: vec![],
                    attributes: vec![],
                },
            )
            .build();
        let spec = VmSpec::hotspot9();
        let user = UserClass::summarize(cf);
        let world = World::new(&spec, vec![]);
        let m = user.methods[0].clone();
        assert!(verify_method(&world, &user, &m, &spec, &mut Cov::disabled()).is_err());
    }

    #[test]
    fn uninitialized_object_use_rejected() {
        use classfuzz_jimple::*;
        // new without <init>, then invokevirtual on it.
        let mut c = IrClass::new("v/Uninit");
        let mut body = Body::new();
        body.declare("o", JType::object("java/lang/Thread"));
        body.stmts.push(Stmt::Assign {
            target: Target::Local("o".into()),
            value: Expr::New("java/lang/Thread".into()),
        });
        body.stmts.push(Stmt::Invoke(InvokeExpr {
            kind: InvokeKind::Virtual,
            class: "java/lang/Thread".into(),
            name: "start".into(),
            params: vec![],
            ret: None,
            receiver: Some(Value::local("o")),
            args: vec![],
        }));
        body.stmts.push(Stmt::Return(None));
        c.methods.push(IrMethod {
            access: classfuzz_classfile::MethodAccess::STATIC,
            name: "m".into(),
            params: vec![],
            ret: None,
            exceptions: vec![],
            body: Some(body),
        });
        assert!(verify(&c, &VmSpec::hotspot9()).is_err());
    }

    #[test]
    fn jsr_rejected_in_version_51() {
        use classfuzz_classfile::attributes::CodeAttribute;
        use classfuzz_classfile::{Instruction, MethodAccess, Opcode};
        let cf = classfuzz_classfile::ClassFile::builder("v/Jsr")
            .super_class("java/lang/Object")
            .method(
                MethodAccess::STATIC,
                "m",
                "()V",
                CodeAttribute {
                    max_stack: 1,
                    max_locals: 0,
                    instructions: vec![
                        Instruction::Branch(Opcode::Jsr, 3),
                        Instruction::Simple(Opcode::Return),
                    ],
                    exception_table: vec![],
                    attributes: vec![],
                },
            )
            .build();
        let spec = VmSpec::hotspot9();
        let user = UserClass::summarize(cf);
        let world = World::new(&spec, vec![]);
        let m = user.methods[0].clone();
        assert!(verify_method(&world, &user, &m, &spec, &mut Cov::disabled()).is_err());
    }
}
