//! The class "world": loaded user classes plus the bootstrap library,
//! with hierarchy queries used by every startup phase.

use std::collections::BTreeMap;
use std::sync::Arc;

use classfuzz_classfile::{ClassFile, FieldAccess, FieldType, MethodAccess, MethodDescriptor};

use crate::analysis::AnalysisTable;
use crate::library::{shared_library, LibClass};
use crate::prepared::PreparedTable;
use crate::spec::VmSpec;

/// Summary of a user-class method, with descriptor pre-parsed.
#[derive(Debug, Clone)]
pub struct MethodSummary {
    /// Index into `ClassFile::methods`.
    pub index: usize,
    /// Method name (may be garbage after mutation).
    pub name: String,
    /// Raw descriptor text.
    pub desc_text: String,
    /// Parsed descriptor, when parseable.
    pub desc: Option<MethodDescriptor>,
    /// Access flags.
    pub access: MethodAccess,
    /// Whether a `Code` attribute is present.
    pub has_code: bool,
    /// Resolved `throws`-clause class names (dangling entries dropped).
    pub exceptions: Vec<String>,
}

/// Summary of a user-class field.
#[derive(Debug, Clone)]
pub struct FieldSummary {
    /// Field name.
    pub name: String,
    /// Raw descriptor text.
    pub desc_text: String,
    /// Parsed type, when parseable.
    pub ty: Option<FieldType>,
    /// Access flags.
    pub access: FieldAccess,
}

/// A user class admitted to the world (parsed, not yet checked).
#[derive(Debug, Clone)]
pub struct UserClass {
    /// The parsed classfile.
    pub cf: ClassFile,
    /// Binary name (resolved from `this_class`).
    pub name: String,
    /// Superclass name, when resolvable.
    pub super_name: Option<String>,
    /// Interface names (dangling entries dropped).
    pub interfaces: Vec<String>,
    /// Method summaries, in declaration order.
    pub methods: Vec<MethodSummary>,
    /// Field summaries, in declaration order.
    pub fields: Vec<FieldSummary>,
    /// Per-method prepared-code table, filled lazily on first execution.
    /// `Arc`-shared: cloning the class (or sharing its preparse handle
    /// across the five profiles) shares the slots, which is sound because
    /// prepared code is a pure function of `cf`.
    pub prepared: PreparedTable,
    /// Per-method verification-analysis table, filled lazily on first
    /// verification. `Arc`-shared for the same reason as `prepared`:
    /// analysis is a pure function of `cf`, so every profile's verifier
    /// can consume the same slots.
    pub analysis: AnalysisTable,
}

impl UserClass {
    /// Summarizes a parsed classfile. Never fails: unresolvable names
    /// surface as placeholders for the checkers to reject.
    pub fn summarize(cf: ClassFile) -> UserClass {
        let cp = &cf.constant_pool;
        let name = cf
            .this_class_name()
            .unwrap_or_else(|| format!("$badclass{}", cf.this_class.0));
        let super_name = cf.super_class_name();
        let interfaces = cf.interface_names();
        let methods = cf
            .methods
            .iter()
            .enumerate()
            .map(|(index, m)| {
                let mname = cp.utf8_text(m.name).unwrap_or("$badname").to_string();
                let desc_text = cp.utf8_text(m.descriptor).unwrap_or("").to_string();
                MethodSummary {
                    index,
                    name: mname,
                    desc: MethodDescriptor::parse(&desc_text).ok(),
                    desc_text,
                    access: m.access,
                    has_code: m.code().is_some(),
                    exceptions: m
                        .declared_exceptions()
                        .iter()
                        .filter_map(|&e| cp.class_name(e))
                        .collect(),
                }
            })
            .collect();
        let fields = cf
            .fields
            .iter()
            .map(|f| {
                let fname = cp.utf8_text(f.name).unwrap_or("$badname").to_string();
                let desc_text = cp.utf8_text(f.descriptor).unwrap_or("").to_string();
                FieldSummary {
                    name: fname,
                    ty: FieldType::parse(&desc_text).ok(),
                    desc_text,
                    access: f.access,
                }
            })
            .collect();
        let prepared = PreparedTable::for_methods(cf.methods.len());
        let analysis = AnalysisTable::for_methods(cf.methods.len());
        UserClass {
            cf,
            name,
            super_name,
            interfaces,
            methods,
            fields,
            prepared,
            analysis,
        }
    }

    /// Finds a method summary by name and descriptor text.
    pub fn find_method(&self, name: &str, desc: &str) -> Option<&MethodSummary> {
        self.methods
            .iter()
            .find(|m| m.name == name && m.desc_text == desc)
    }
}

/// The complete class environment of a run: an immutable, process-shared
/// bootstrap library plus a per-run user-class overlay.
///
/// The library half never changes after it is built (one build per
/// [`JreGeneration`](crate::JreGeneration) per process, see
/// [`shared_library`]), so constructing a `World` is an *overlay*
/// operation — a handful of `UserClass` inserts — not a library rebuild.
#[derive(Debug)]
pub struct World {
    /// Bootstrap library for the VM's JRE generation (shared, immutable).
    pub library: Arc<BTreeMap<String, LibClass>>,
    /// User classes on the classpath (the test class plus any extras).
    /// `Arc`ed so the overlay shares the one summarized copy produced by
    /// [`preparse`](crate::preparse) instead of deep-cloning it per run.
    pub user: BTreeMap<String, Arc<UserClass>>,
}

impl World {
    /// Builds the world for `spec` with the given user classes, sharing
    /// the process-wide cached library for `spec`'s JRE generation.
    pub fn new(spec: &VmSpec, user_classes: Vec<UserClass>) -> World {
        World::with_library(
            shared_library(spec.jre),
            user_classes.into_iter().map(Arc::new).collect(),
        )
    }

    /// Builds the world as an overlay over an explicit base library — the
    /// hot-path constructor [`Jvm`](crate::Jvm) uses with its per-instance
    /// cached handle (and benchmarks use with a deliberately fresh build).
    /// Taking `Arc<UserClass>` keeps the overlay an O(classes) refcount
    /// bump: no classfile is copied to build a world.
    pub fn with_library(
        library: Arc<BTreeMap<String, LibClass>>,
        user_classes: Vec<Arc<UserClass>>,
    ) -> World {
        let mut user = BTreeMap::new();
        for c in user_classes {
            user.entry(c.name.clone()).or_insert(c);
        }
        World { library, user }
    }

    /// Does any class of this name exist (user or library)?
    pub fn exists(&self, name: &str) -> bool {
        self.user.contains_key(name) || self.library.contains_key(name)
    }

    /// Library lookup.
    pub fn lib(&self, name: &str) -> Option<&LibClass> {
        self.library.get(name)
    }

    /// User-class lookup.
    pub fn user_class(&self, name: &str) -> Option<&UserClass> {
        self.user.get(name).map(Arc::as_ref)
    }

    /// User-class lookup returning the shared handle, so callers that
    /// need an owned class (the interpreter's dispatch) pay a refcount
    /// bump instead of a deep classfile clone.
    pub fn user_class_arc(&self, name: &str) -> Option<&Arc<UserClass>> {
        self.user.get(name)
    }

    /// Is `name` declared final? `None` when the class is unknown.
    pub fn is_final(&self, name: &str) -> Option<bool> {
        if let Some(u) = self.user.get(name) {
            return Some(
                u.cf.access
                    .contains(classfuzz_classfile::ClassAccess::FINAL),
            );
        }
        self.library.get(name).map(LibClass::is_final)
    }

    /// Is `name` an interface? `None` when unknown.
    pub fn is_interface(&self, name: &str) -> Option<bool> {
        if let Some(u) = self.user.get(name) {
            return Some(
                u.cf.access
                    .contains(classfuzz_classfile::ClassAccess::INTERFACE),
            );
        }
        self.library.get(name).map(LibClass::is_interface)
    }

    /// Is `name` an internal (encapsulated) library class?
    pub fn is_internal(&self, name: &str) -> bool {
        self.library.get(name).map(|c| c.internal).unwrap_or(false)
    }

    /// Direct superclass name, when the class is known.
    pub fn super_of(&self, name: &str) -> Option<String> {
        if let Some(u) = self.user.get(name) {
            return u.super_name.clone();
        }
        self.library
            .get(name)
            .and_then(|c| c.super_class.map(str::to_string))
    }

    /// Direct superinterfaces, when known.
    pub fn interfaces_of(&self, name: &str) -> Vec<String> {
        if let Some(u) = self.user.get(name) {
            return u.interfaces.clone();
        }
        self.library
            .get(name)
            .map(|c| c.interfaces.iter().map(|s| s.to_string()).collect())
            .unwrap_or_default()
    }

    /// Walks the super chain of `name` (exclusive), bounded against cycles.
    pub fn super_chain(&self, name: &str) -> Vec<String> {
        let mut chain = Vec::new();
        let mut cur = name.to_string();
        for _ in 0..64 {
            match self.super_of(&cur) {
                Some(s) => {
                    if chain.contains(&s) || s == name {
                        break; // circular hierarchy; checker reports it
                    }
                    chain.push(s.clone());
                    cur = s;
                }
                None => break,
            }
        }
        chain
    }

    /// Subtype test: is `sub` assignable to `sup`? Arrays are not modeled
    /// here (the verifier handles them structurally); unknown classes are
    /// related only to `java/lang/Object` and themselves.
    pub fn is_subtype(&self, sub: &str, sup: &str) -> bool {
        if sub == sup || sup == "java/lang/Object" {
            return true;
        }
        let mut work = vec![sub.to_string()];
        let mut seen = std::collections::BTreeSet::new();
        while let Some(cur) = work.pop() {
            if !seen.insert(cur.clone()) {
                continue;
            }
            if cur == sup {
                return true;
            }
            if let Some(s) = self.super_of(&cur) {
                work.push(s);
            }
            work.extend(self.interfaces_of(&cur));
        }
        false
    }

    /// The nearest common superclass of two reference types (interfaces
    /// collapse to `java/lang/Object`, as in HotSpot's verifier merge).
    pub fn common_super(&self, a: &str, b: &str) -> String {
        if a == b {
            return a.to_string();
        }
        let mut a_chain = vec![a.to_string()];
        a_chain.extend(self.super_chain(a));
        let mut b_set = vec![b.to_string()];
        b_set.extend(self.super_chain(b));
        for c in &a_chain {
            if b_set.contains(c) {
                return c.clone();
            }
        }
        "java/lang/Object".to_string()
    }

    /// Does a class in a circular inheritance relationship with itself
    /// exist starting from `name`?
    pub fn has_circularity(&self, name: &str) -> bool {
        let mut seen = std::collections::BTreeSet::new();
        let mut cur = name.to_string();
        loop {
            if !seen.insert(cur.clone()) {
                return true;
            }
            match self.super_of(&cur) {
                Some(s) => cur = s,
                None => return false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use classfuzz_jimple::{lower::lower_class, IrClass};

    fn world_with(classes: Vec<IrClass>) -> World {
        let spec = VmSpec::hotspot9();
        let user = classes
            .into_iter()
            .map(|c| UserClass::summarize(lower_class(&c)))
            .collect();
        World::new(&spec, user)
    }

    #[test]
    fn library_and_user_coexist() {
        let w = world_with(vec![IrClass::new("demo/A")]);
        assert!(w.exists("demo/A"));
        assert!(w.exists("java/lang/Object"));
        assert!(!w.exists("no/Such"));
        assert_eq!(w.is_interface("demo/A"), Some(false));
        assert_eq!(w.is_interface("java/util/Map"), Some(true));
        assert_eq!(w.is_final("java/lang/String"), Some(true));
    }

    #[test]
    fn subtype_walks_supers_and_interfaces() {
        let mut sub = IrClass::new("demo/Sub");
        sub.super_class = Some("java/lang/Thread".into());
        let w = world_with(vec![sub]);
        assert!(w.is_subtype("demo/Sub", "java/lang/Thread"));
        assert!(w.is_subtype("demo/Sub", "java/lang/Runnable"));
        assert!(w.is_subtype("demo/Sub", "java/lang/Object"));
        assert!(!w.is_subtype("java/lang/Thread", "demo/Sub"));
        assert!(w.is_subtype(
            "java/lang/ArrayIndexOutOfBoundsException",
            "java/lang/RuntimeException"
        ));
    }

    #[test]
    fn common_super_of_exceptions() {
        let w = world_with(vec![]);
        assert_eq!(
            w.common_super(
                "java/lang/ArithmeticException",
                "java/lang/NullPointerException"
            ),
            "java/lang/RuntimeException"
        );
        assert_eq!(
            w.common_super("java/lang/String", "java/lang/Thread"),
            "java/lang/Object"
        );
    }

    #[test]
    fn circularity_detected() {
        let mut a = IrClass::new("cyc/A");
        a.super_class = Some("cyc/B".into());
        let mut b = IrClass::new("cyc/B");
        b.super_class = Some("cyc/A".into());
        let w = world_with(vec![a, b]);
        assert!(w.has_circularity("cyc/A"));
        assert!(!w.has_circularity("java/lang/String"));
    }

    #[test]
    fn summarize_survives_bad_descriptors() {
        let mut c = IrClass::new("demo/Bad");
        c.methods.push(classfuzz_jimple::IrMethod::abstract_method(
            classfuzz_classfile::MethodAccess::PUBLIC | classfuzz_classfile::MethodAccess::ABSTRACT,
            "m",
            vec![],
            None,
        ));
        let mut cf = lower_class(&c);
        // Corrupt the method descriptor.
        let bad = cf.constant_pool.utf8("(((");
        cf.methods[0].descriptor = bad;
        let u = UserClass::summarize(cf);
        assert!(u.methods[0].desc.is_none());
        assert_eq!(u.methods[0].desc_text, "(((");
    }
}
