//! Execution outcomes: startup phases and JVM errors (Table 1 of the paper).

use std::fmt;

/// The startup phase in which a classfile was accepted or rejected.
///
/// Matches the paper's five-way result simplification (§2.3): the numeric
/// value is the digit used in encoded output sequences like Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Phase {
    /// `0` — the main method was normally invoked.
    Invoked,
    /// `1` — rejected during creation & loading.
    Loading,
    /// `2` — rejected during linking (verification/preparation/resolution).
    Linking,
    /// `3` — rejected during initialization (`<clinit>` execution).
    Initializing,
    /// `4` — rejected at runtime (including "main method not found").
    Runtime,
}

impl Phase {
    /// The digit used in encoded output sequences.
    pub fn code(self) -> u8 {
        match self {
            Phase::Invoked => 0,
            Phase::Loading => 1,
            Phase::Linking => 2,
            Phase::Initializing => 3,
            Phase::Runtime => 4,
        }
    }

    /// Every startup run ends in one of these five states.
    pub fn is_terminal(self) -> bool {
        true
    }

    /// Human-readable phase name as used in Table 7.
    pub fn describe(self) -> &'static str {
        match self {
            Phase::Invoked => "Normally invoked",
            Phase::Loading => "Rejected during the creation/loading phase",
            Phase::Linking => "Rejected during the linking phase",
            Phase::Initializing => "Rejected during the initialization phase",
            Phase::Runtime => "Rejected at runtime",
        }
    }

    /// All phases, in encoding order.
    pub fn all() -> [Phase; 5] {
        [
            Phase::Invoked,
            Phase::Loading,
            Phase::Linking,
            Phase::Initializing,
            Phase::Runtime,
        ]
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// The kind of error or exception a JVM reported (Table 1's error classes
/// plus the runtime exceptions the interpreter can raise).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)] // names mirror java.lang.* error classes one-to-one
pub enum JvmErrorKind {
    ClassFormatError,
    UnsupportedClassVersionError,
    ClassCircularityError,
    NoClassDefFoundError,
    VerifyError,
    IncompatibleClassChangeError,
    AbstractMethodError,
    IllegalAccessError,
    InstantiationError,
    NoSuchFieldError,
    NoSuchMethodError,
    UnsatisfiedLinkError,
    ExceptionInInitializerError,
    /// The launcher could not find (or may not invoke) a suitable `main`.
    MainMethodNotFound,
    ArithmeticException,
    NullPointerException,
    ClassCastException,
    ArrayIndexOutOfBoundsException,
    NegativeArraySizeException,
    StackOverflowError,
    OutOfMemoryError,
    /// Execution exceeded the interpreter's deterministic step budget.
    ExecutionBudgetExceeded,
    /// The interpreter's bounded superclass-resolution walk ran out of
    /// hops before reaching the root of the chain.
    ResolutionDepthExceeded,
    /// A user (or library) exception propagated out of `main`.
    UncaughtException,
    /// The VM itself gave up in a way no specified error covers.
    InternalError,
    /// The VM implementation itself crashed (a contained panic) — the
    /// analogue of a native JVM dumping an `hs_err` fatal-error log. The
    /// paper treats such crashes as first-class bugs (§3.3).
    InternalVmError,
}

impl JvmErrorKind {
    /// The `java.lang` spelling of the error, for report rendering.
    pub fn java_name(self) -> &'static str {
        match self {
            JvmErrorKind::ClassFormatError => "java.lang.ClassFormatError",
            JvmErrorKind::UnsupportedClassVersionError => "java.lang.UnsupportedClassVersionError",
            JvmErrorKind::ClassCircularityError => "java.lang.ClassCircularityError",
            JvmErrorKind::NoClassDefFoundError => "java.lang.NoClassDefFoundError",
            JvmErrorKind::VerifyError => "java.lang.VerifyError",
            JvmErrorKind::IncompatibleClassChangeError => "java.lang.IncompatibleClassChangeError",
            JvmErrorKind::AbstractMethodError => "java.lang.AbstractMethodError",
            JvmErrorKind::IllegalAccessError => "java.lang.IllegalAccessError",
            JvmErrorKind::InstantiationError => "java.lang.InstantiationError",
            JvmErrorKind::NoSuchFieldError => "java.lang.NoSuchFieldError",
            JvmErrorKind::NoSuchMethodError => "java.lang.NoSuchMethodError",
            JvmErrorKind::UnsatisfiedLinkError => "java.lang.UnsatisfiedLinkError",
            JvmErrorKind::ExceptionInInitializerError => "java.lang.ExceptionInInitializerError",
            JvmErrorKind::MainMethodNotFound => "Error: Main method not found",
            JvmErrorKind::ArithmeticException => "java.lang.ArithmeticException",
            JvmErrorKind::NullPointerException => "java.lang.NullPointerException",
            JvmErrorKind::ClassCastException => "java.lang.ClassCastException",
            JvmErrorKind::ArrayIndexOutOfBoundsException => {
                "java.lang.ArrayIndexOutOfBoundsException"
            }
            JvmErrorKind::NegativeArraySizeException => "java.lang.NegativeArraySizeException",
            JvmErrorKind::StackOverflowError => "java.lang.StackOverflowError",
            JvmErrorKind::OutOfMemoryError => "java.lang.OutOfMemoryError",
            JvmErrorKind::ExecutionBudgetExceeded => "Error: execution budget exceeded",
            JvmErrorKind::ResolutionDepthExceeded => "Error: superclass resolution depth exceeded",
            JvmErrorKind::UncaughtException => "Exception in thread \"main\"",
            JvmErrorKind::InternalError => "java.lang.InternalError",
            JvmErrorKind::InternalVmError => {
                "A fatal error has been detected by the Java Runtime Environment"
            }
        }
    }
}

impl fmt::Display for JvmErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.java_name())
    }
}

/// A JVM error with its diagnostic message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JvmError {
    /// Error classification.
    pub kind: JvmErrorKind,
    /// Vendor-style diagnostic text.
    pub message: String,
}

impl JvmError {
    /// Creates an error of `kind` with `message`.
    pub fn new(kind: JvmErrorKind, message: impl Into<String>) -> Self {
        JvmError {
            kind,
            message: message.into(),
        }
    }
}

impl fmt::Display for JvmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind, self.message)
    }
}

impl std::error::Error for JvmError {}

/// The observable behavior `r = jvm(e, c, i)` of one startup run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The class loaded, linked, initialized, and `main` ran to completion.
    Invoked {
        /// Lines printed to standard out.
        stdout: Vec<String>,
    },
    /// The class was rejected in `phase` with `error`.
    Rejected {
        /// Phase of rejection.
        phase: Phase,
        /// The reported error.
        error: JvmError,
    },
    /// The VM implementation itself crashed (a contained panic) while
    /// processing the class — the analogue of a native JVM aborting with an
    /// `hs_err` fatal-error log. Crashes are first-class bugs (§3.3):
    /// "profile A crashes where profile B rejects cleanly" is a reportable
    /// discrepancy, so crashes encode as their own digit
    /// ([`Outcome::CRASH_CODE`]) rather than borrowing a phase digit.
    Crashed {
        /// The last startup phase entered before the crash.
        phase: Phase,
        /// Synthetic error describing the panic (message + location).
        error: JvmError,
    },
}

impl Outcome {
    /// The digit encoding a crash in output sequences — one past the five
    /// phase digits of §2.3, so crash verdicts never collide with clean
    /// rejections in the same phase.
    pub const CRASH_CODE: u8 = 5;

    /// The phase digit for encoded output sequences. For a crash this is
    /// the phase the VM had *entered* when it died, not a verdict digit —
    /// use [`Outcome::code`] for encoding.
    pub fn phase(&self) -> Phase {
        match self {
            Outcome::Invoked { .. } => Phase::Invoked,
            Outcome::Rejected { phase, .. } => *phase,
            Outcome::Crashed { phase, .. } => *phase,
        }
    }

    /// The digit used in encoded output sequences: the phase code for
    /// normal outcomes, [`Outcome::CRASH_CODE`] for crashes.
    pub fn code(&self) -> u8 {
        match self {
            Outcome::Crashed { .. } => Outcome::CRASH_CODE,
            _ => self.phase().code(),
        }
    }

    /// Whether the VM implementation crashed on this run.
    pub fn is_crash(&self) -> bool {
        matches!(self, Outcome::Crashed { .. })
    }

    /// The crash description, when the VM crashed.
    pub fn crash_detail(&self) -> Option<&str> {
        match self {
            Outcome::Crashed { error, .. } => Some(&error.message),
            _ => None,
        }
    }

    /// The error, when rejected or crashed.
    pub fn error(&self) -> Option<&JvmError> {
        match self {
            Outcome::Invoked { .. } => None,
            Outcome::Rejected { error, .. } => Some(error),
            Outcome::Crashed { error, .. } => Some(error),
        }
    }

    /// Convenience constructor for a rejection.
    pub fn rejected(phase: Phase, kind: JvmErrorKind, message: impl Into<String>) -> Self {
        Outcome::Rejected {
            phase,
            error: JvmError::new(kind, message),
        }
    }

    /// Convenience constructor for a VM crash caught in `phase`.
    pub fn crashed(phase: Phase, detail: impl Into<String>) -> Self {
        Outcome::Crashed {
            phase,
            error: JvmError::new(JvmErrorKind::InternalVmError, detail),
        }
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Invoked { stdout } => write!(f, "invoked ({} lines)", stdout.len()),
            Outcome::Rejected { phase, error } => write!(f, "rejected[{phase}] {error}"),
            Outcome::Crashed { phase, error } => write!(f, "crashed[in phase {phase}] {error}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_codes_match_paper_encoding() {
        assert_eq!(Phase::Invoked.code(), 0);
        assert_eq!(Phase::Loading.code(), 1);
        assert_eq!(Phase::Linking.code(), 2);
        assert_eq!(Phase::Initializing.code(), 3);
        assert_eq!(Phase::Runtime.code(), 4);
        assert_eq!(Phase::all().map(Phase::code), [0, 1, 2, 3, 4]);
    }

    #[test]
    fn outcome_accessors() {
        let ok = Outcome::Invoked {
            stdout: vec!["Completed!".into()],
        };
        assert_eq!(ok.phase(), Phase::Invoked);
        assert!(ok.error().is_none());
        let bad = Outcome::rejected(Phase::Linking, JvmErrorKind::VerifyError, "bad stack");
        assert_eq!(bad.phase(), Phase::Linking);
        assert_eq!(bad.error().unwrap().kind, JvmErrorKind::VerifyError);
    }

    #[test]
    fn error_rendering() {
        let e = JvmError::new(JvmErrorKind::ClassFormatError, "no Code attribute");
        assert_eq!(
            e.to_string(),
            "java.lang.ClassFormatError: no Code attribute"
        );
    }

    #[test]
    fn crash_outcomes_carry_phase_and_encode_as_their_own_digit() {
        let crash = Outcome::crashed(Phase::Linking, "panicked at verifier.rs:10: boom");
        assert!(crash.is_crash());
        assert_eq!(crash.phase(), Phase::Linking);
        assert_eq!(crash.code(), Outcome::CRASH_CODE);
        assert_eq!(crash.error().unwrap().kind, JvmErrorKind::InternalVmError);
        assert_eq!(
            crash.crash_detail(),
            Some("panicked at verifier.rs:10: boom")
        );
        // A clean rejection in the same phase encodes differently.
        let clean = Outcome::rejected(Phase::Linking, JvmErrorKind::VerifyError, "x");
        assert_ne!(crash.code(), clean.code());
        assert!(!clean.is_crash());
        assert!(clean.crash_detail().is_none());
    }

    #[test]
    fn crash_rendering_names_the_phase() {
        let crash = Outcome::crashed(Phase::Runtime, "boom");
        let text = crash.to_string();
        assert!(text.starts_with("crashed[in phase 4]"), "{text}");
        assert!(text.contains("fatal error"), "{text}");
    }
}
