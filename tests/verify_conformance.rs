//! Shared≡cold verifier conformance: every program here runs through both
//! the analyze-once verifier (shared [`AnalysisTable`] on the class) and
//! the cold per-call analysis baseline, on all five profiles, asserting
//! the full traced results — outcome *and* coverage trace — are
//! bit-identical. A warm rerun over the now-filled table must agree again.
//!
//! The goldens target the seams where the analysis layer could plausibly
//! diverge from the old single-pass verifier: exception-handler range
//! edges, unreachable dead-code islands (never analyzed by the dataflow,
//! whatever garbage they hold), merge-point frame joins (where the policy
//! knobs split the profiles), unparseable-descriptor rejection (decided
//! before the dataflow starts), and deep branch chains (worklist
//! saturation). A closing proptest sweeps randomly mutated candidates so
//! the equivalence is pinned on fuzzer-shaped input, not just
//! hand-assembled programs.

use classfuzz::classfile::{
    CodeAttribute, ConstIndex, ConstantPool, ExceptionTableEntry, Instruction, MethodAccess, Opcode,
};
use classfuzz::core::seeds::SeedCorpus;
use classfuzz::jimple::lower::lower_class;
use classfuzz::jimple::IrClass;
use classfuzz::mutation::{registry, MutationCtx};
use classfuzz::vm::{preparse, ExecOutcome, Jvm, Phase, VmSpec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An exception-table entry expressed in instruction indices; the assembler
/// rewrites them to byte offsets. `end` may equal the instruction count
/// (exclusive end of code).
struct Handler {
    start: usize,
    end: usize,
    handler: usize,
    catch_type: ConstIndex,
}

/// Rewrites branch/switch targets given as *instruction indices* into the
/// absolute byte offsets the code array stores, returning the instruction
/// list plus the pc of each instruction (with one trailing sentinel: the
/// total code length).
fn resolve_targets(mut insns: Vec<Instruction>) -> (Vec<Instruction>, Vec<u32>) {
    let mut pcs = Vec::with_capacity(insns.len() + 1);
    let mut pc = 0u32;
    for insn in &insns {
        pcs.push(pc);
        pc += insn.encoded_len(pc);
    }
    pcs.push(pc);
    for insn in &mut insns {
        match insn {
            Instruction::Branch(_, t) => *t = pcs[*t as usize],
            Instruction::TableSwitch(ts) => {
                ts.default = pcs[ts.default as usize];
                for t in &mut ts.targets {
                    *t = pcs[*t as usize];
                }
            }
            Instruction::LookupSwitch(ls) => {
                ls.default = pcs[ls.default as usize];
                for (_, t) in &mut ls.pairs {
                    *t = pcs[*t as usize];
                }
            }
            _ => {}
        }
    }
    (insns, pcs)
}

/// Assembles a class whose static `main` runs the given instruction stream
/// (index-valued branch targets and handler ranges).
fn build_main(
    name: &str,
    max_stack: u16,
    max_locals: u16,
    build: impl FnOnce(&mut ConstantPool) -> (Vec<Instruction>, Vec<Handler>),
) -> Vec<u8> {
    let mut builder =
        classfuzz::classfile::ClassFile::builder(name).super_class("java/lang/Object");
    let (insns, handlers) = build(builder.constant_pool_mut());
    let (instructions, pcs) = resolve_targets(insns);
    let exception_table = handlers
        .iter()
        .map(|h| ExceptionTableEntry {
            start_pc: pcs[h.start] as u16,
            end_pc: pcs[h.end] as u16,
            handler_pc: pcs[h.handler] as u16,
            catch_type: h.catch_type,
        })
        .collect();
    builder
        .method(
            MethodAccess::PUBLIC | MethodAccess::STATIC,
            "main",
            "([Ljava/lang/String;)V",
            CodeAttribute {
                max_stack,
                max_locals,
                instructions,
                exception_table,
                attributes: Vec::new(),
            },
        )
        .build()
        .to_bytes()
}

/// The conformance contract of the analyze-once layer: for one decode of
/// `bytes`, the shared-table run, the cold per-call-analysis run, and a
/// warm rerun over the filled table produce identical traced results on
/// every profile — outcome and coverage trace, bit for bit.
fn assert_shared_matches_cold(bytes: &[u8], what: &str) {
    let parsed = preparse(bytes);
    for spec in VmSpec::all_five() {
        let name = spec.name.clone();
        let shared = Jvm::new(spec.clone());
        let cold = Jvm::cold_verify(spec);
        let s = shared.run_traced_parsed(&parsed);
        let c = cold.run_traced_parsed(&parsed);
        assert_eq!(s, c, "{what}: shared vs cold diverged on {name}");
        let warm = shared.run_traced_parsed(&parsed);
        assert_eq!(s, warm, "{what}: warm rerun diverged on {name}");
    }
}

/// Convenience: the normalized verdict of a shared-table run on `spec`.
fn verdict(bytes: &[u8], spec: VmSpec) -> ExecOutcome {
    ExecOutcome::of(&Jvm::new(spec).run(bytes).outcome)
}

/// Convenience: the startup phase a shared-table run on `spec` reaches.
fn phase_of(bytes: &[u8], spec: VmSpec) -> Phase {
    Jvm::new(spec).run(bytes).outcome.phase()
}

#[test]
fn handler_range_edges_match_cold() {
    // A handler protecting exactly the idiv (half-open range), catching
    // the real ArithmeticException; a second entry with catch_type 0
    // (Throwable) covering the same range, dead at runtime. Exercises the
    // analyzed handler table: byte-offset range matching, pre-resolved
    // handler indices, and catch-name interning.
    let bytes = build_main("vc/Handler", 2, 1, |cp| {
        let ae = cp.class("java/lang/ArithmeticException");
        let insns = vec![
            Instruction::Simple(Opcode::Iconst1), // 0
            Instruction::Simple(Opcode::Iconst0), // 1
            Instruction::Simple(Opcode::Idiv),    // 2: traps
            Instruction::Simple(Opcode::Pop),     // 3
            Instruction::Simple(Opcode::Return),  // 4
            Instruction::Simple(Opcode::Pop),     // 5: handler (pops throwable)
            Instruction::Simple(Opcode::Return),  // 6
        ];
        let handlers = vec![
            Handler {
                start: 0,
                end: 4,
                handler: 5,
                catch_type: ae,
            },
            Handler {
                start: 0,
                end: 4,
                handler: 5,
                catch_type: ConstIndex(0),
            },
        ];
        (insns, handlers)
    });
    assert_shared_matches_cold(&bytes, "handler-range edges");
    // And the program actually completes by catching the trap.
    assert_eq!(
        verdict(&bytes, VmSpec::hotspot9()),
        ExecOutcome::Completed { stdout: vec![] },
        "handler should catch the division trap"
    );
}

#[test]
fn dead_code_island_matches_cold() {
    // An unreachable island after an unconditional goto, holding code that
    // would never verify (pop on an empty stack, a branch into the middle
    // of nowhere). The dataflow never reaches it, so every profile accepts
    // — and analysis, which flattens the whole stream eagerly, must not
    // change that.
    let bytes = build_main("vc/DeadIsle", 1, 1, |_cp| {
        let insns = vec![
            Instruction::Branch(Opcode::Goto, 4), // 0: jump over the island
            Instruction::Simple(Opcode::Pop),     // 1: dead, would underflow
            Instruction::Simple(Opcode::Pop),     // 2: dead
            Instruction::Simple(Opcode::Athrow),  // 3: dead
            Instruction::Simple(Opcode::Return),  // 4: live target
        ];
        (insns, Vec::new())
    });
    assert_shared_matches_cold(&bytes, "dead-code island");
    assert_eq!(
        verdict(&bytes, VmSpec::j9()),
        ExecOutcome::Completed { stdout: vec![] },
        "dead islands are not verified"
    );
}

#[test]
fn merge_point_join_splits_profiles_identically() {
    // Null and Ref("java/lang/String") meet on the stack at a join point:
    // HotSpot/GIJ merge them to the reference type; J9's strict stack
    // shape merge rejects. The split itself is the paper's Problem 1 — the
    // conformance claim is that the analyzed and cold paths land on the
    // same side for every profile, traces included.
    let bytes = build_main("vc/Join", 2, 1, |cp| {
        let s = cp.string("joined");
        let insns = vec![
            Instruction::Simple(Opcode::Iconst0),    // 0
            Instruction::Branch(Opcode::Ifeq, 4),    // 1: to 4
            Instruction::Simple(Opcode::AconstNull), // 2
            Instruction::Branch(Opcode::Goto, 5),    // 3: to join
            Instruction::Ldc(s),                     // 4: pushes String
            Instruction::Simple(Opcode::Pop),        // 5: join point
            Instruction::Simple(Opcode::Return),     // 6
        ];
        (insns, Vec::new())
    });
    assert_shared_matches_cold(&bytes, "merge-point join");
    assert_eq!(
        verdict(&bytes, VmSpec::hotspot8()),
        ExecOutcome::Completed { stdout: vec![] },
        "HotSpot merges Null with a reference"
    );
    assert_eq!(
        phase_of(&bytes, VmSpec::j9()),
        Phase::Linking,
        "J9's strict stack-shape merge rejects the join"
    );
}

#[test]
fn unparseable_descriptor_matches_cold() {
    // A helper method whose descriptor is corrupted after building. The
    // loader's format check rejects it at Loading on every profile (the
    // verifier's "unparseable method descriptor" arm is the defensive
    // backstop behind it); the conformance claim is that the analysis
    // layer does not perturb a pre-verification rejection — the table
    // simply stays empty on both paths.
    let mut cf = classfuzz::classfile::ClassFile::builder("vc/BadDesc")
        .super_class("java/lang/Object")
        .method(
            MethodAccess::PUBLIC | MethodAccess::STATIC,
            "main",
            "([Ljava/lang/String;)V",
            CodeAttribute {
                max_stack: 0,
                max_locals: 1,
                instructions: vec![Instruction::Simple(Opcode::Return)],
                exception_table: Vec::new(),
                attributes: Vec::new(),
            },
        )
        .method(
            MethodAccess::PUBLIC | MethodAccess::STATIC,
            "helper",
            "()V",
            CodeAttribute {
                max_stack: 0,
                max_locals: 0,
                instructions: vec![Instruction::Simple(Opcode::Return)],
                exception_table: Vec::new(),
                attributes: Vec::new(),
            },
        )
        .build();
    let bad = cf.constant_pool.utf8("(((");
    cf.methods[1].descriptor = bad;
    let bytes = cf.to_bytes();
    assert_shared_matches_cold(&bytes, "unparseable descriptor");
    assert_eq!(
        phase_of(&bytes, VmSpec::hotspot9()),
        Phase::Loading,
        "format checking rejects the descriptor at loading"
    );
    assert_eq!(
        phase_of(&bytes, VmSpec::j9()),
        Phase::Loading,
        "loading is eager even under lazy method verification"
    );
}

#[test]
fn deep_branch_chain_matches_cold() {
    // Fifty conditional branches whose taken edge and fall-through edge
    // both land on the next instruction: every block is a join of two
    // identical frames, saturating the worklist's merge path and the
    // analyzed branch-target table.
    let bytes = build_main("vc/Chain", 1, 1, |_cp| {
        let mut insns = Vec::new();
        for b in 0..50usize {
            insns.push(Instruction::Simple(Opcode::Iconst0)); // 2b
            insns.push(Instruction::Branch(Opcode::Ifeq, (2 * b + 2) as u32)); // 2b+1
        }
        insns.push(Instruction::Simple(Opcode::Return)); // 100
        (insns, Vec::new())
    });
    assert_shared_matches_cold(&bytes, "deep branch chain");
    assert_eq!(
        verdict(&bytes, VmSpec::gij()),
        ExecOutcome::Completed { stdout: vec![] },
        "the chain verifies and runs"
    );
}

#[test]
fn branch_to_non_instruction_matches_cold() {
    // A branch target landing between instruction boundaries: the analysis
    // stores the unresolvable-target sentinel and the error (naming the
    // original byte offset) fires only when the dataflow follows the edge
    // — exactly the cold path's behavior and message.
    let cf = classfuzz::classfile::ClassFile::builder("vc/BadTarget")
        .super_class("java/lang/Object")
        .method(
            MethodAccess::PUBLIC | MethodAccess::STATIC,
            "main",
            "([Ljava/lang/String;)V",
            CodeAttribute {
                max_stack: 1,
                max_locals: 1,
                instructions: vec![
                    Instruction::Simple(Opcode::Iconst0),
                    // ifeq is 3 bytes at pc 1; target pc 2 is inside it.
                    Instruction::Branch(Opcode::Ifeq, 2),
                    Instruction::Simple(Opcode::Return),
                ],
                exception_table: Vec::new(),
                attributes: Vec::new(),
            },
        )
        .build();
    let bytes = cf.to_bytes();
    assert_shared_matches_cold(&bytes, "branch to non-instruction");
    assert_eq!(
        phase_of(&bytes, VmSpec::hotspot7()),
        Phase::Linking,
        "the bad branch target is a verify rejection"
    );
}

/// A diverse batch of IR classes: a generated corpus pushed through a few
/// random mutations, so the verifier sees fuzzer-shaped input (odd
/// hierarchies, swapped bodies, injected members), not just pristine
/// seeds.
fn mutated_batch(corpus_seed: u64, rounds: usize) -> Vec<IrClass> {
    let mut classes = SeedCorpus::generate(6, corpus_seed).into_classes();
    let donors = classes.clone();
    let mutators = registry::all_mutators();
    let mut rng = StdRng::seed_from_u64(corpus_seed ^ 0xa11a);
    for _ in 0..rounds {
        let pick = rng.gen_range(0..classes.len());
        let id = rng.gen_range(0..mutators.len());
        let mut ctx = MutationCtx::new(&mut rng, &donors);
        let _ = mutators[id].apply(&mut classes[pick], &mut ctx);
    }
    classes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Analyzed ≡ cold over randomly mutated candidates: for every class
    /// in a mutated batch and every profile, the shared-table traced run
    /// equals the cold-analysis traced run, and a warm rerun agrees.
    #[test]
    fn mutated_candidates_verify_identically(corpus_seed in any::<u64>()) {
        let classes = mutated_batch(corpus_seed, 16);
        for class in &classes {
            let bytes = lower_class(class).to_bytes();
            let parsed = preparse(&bytes);
            for spec in VmSpec::all_five() {
                let name = spec.name.clone();
                let shared = Jvm::new(spec.clone());
                let cold = Jvm::cold_verify(spec);
                let s = shared.run_traced_parsed(&parsed);
                let c = cold.run_traced_parsed(&parsed);
                prop_assert_eq!(&s, &c, "shared vs cold diverged for {} on {}", class.name, &name);
                let warm = shared.run_traced_parsed(&parsed);
                prop_assert_eq!(&s, &warm, "warm rerun diverged for {} on {}", class.name, &name);
            }
        }
    }
}
