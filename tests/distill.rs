//! The seed-intelligence layer's determinism contract (DESIGN.md §15):
//!
//! * max-cover selection is a pure function of the corpus (a fixed-seed
//!   campaign with `--seed-select maxcover` replays bit for bit);
//! * live distillation fires at fixed iteration boundaries, so a capped
//!   pool evolves identically across reruns, engines, and shard counts
//!   that share a deterministic schedule;
//! * distillation never evicts the class under mutation's ancestry out
//!   from under a deterministic replay — the eviction decision is made
//!   from the same pool state at the same boundary everywhere.

use classfuzz::core::engine::{
    run_campaign, run_campaign_parallel, Algorithm, CampaignConfig, CampaignResult, Schedule,
    SeedSelect,
};
use classfuzz::core::seeds::{SeedCorpus, SeedShape};
use classfuzz::coverage::UniquenessCriterion;

fn corpus() -> Vec<classfuzz::jimple::IrClass> {
    SeedCorpus::generate(16, 41).into_classes()
}

fn capped_config(iterations: usize) -> CampaignConfig {
    CampaignConfig::new(
        Algorithm::Classfuzz(UniquenessCriterion::StBr),
        iterations,
        41,
    )
    .with_seed_select(SeedSelect::MaxCover)
    .with_pool_cap(5)
}

fn gen_stream(result: &CampaignResult) -> Vec<(Vec<u8>, usize, bool)> {
    result
        .gen_classes
        .iter()
        .map(|g| (g.bytes.as_ref().clone(), g.mutator_id, g.accepted))
        .collect()
}

#[test]
fn capped_campaign_is_bit_identical_across_reruns() {
    let seeds = corpus();
    let config = capped_config(200);
    let first = run_campaign(&seeds, &config);
    let second = run_campaign(&seeds, &config);
    assert_eq!(first.test_classes, second.test_classes);
    assert_eq!(gen_stream(&first), gen_stream(&second));
    assert_eq!(first.mutator_stats, second.mutator_stats);
    assert_eq!(
        first.acceptance.distill_passes,
        second.acceptance.distill_passes
    );
    assert_eq!(
        first.acceptance.distill_evicted,
        second.acceptance.distill_evicted
    );
    // 200 iterations over a 32-iteration boundary: the pass counter must
    // show distillation actually ran, or this test guards nothing.
    assert!(
        first.acceptance.distill_passes > 0,
        "no distillation passes in a capped 200-iteration campaign"
    );
}

#[test]
fn distillation_actually_evicts_on_a_redundant_corpus() {
    // The classic-template corpus is deliberately redundant (many seeds
    // share startup coverage), so a tight cap must evict — otherwise the
    // keep-mask is vacuous and `--pool-cap` is a no-op in disguise.
    let seeds = corpus();
    let result = run_campaign(&seeds, &capped_config(200));
    assert!(
        result.acceptance.distill_evicted > 0,
        "a pool capped at 5 over 16 redundant seeds never evicted"
    );
}

#[test]
fn maxcover_selection_reorders_but_replays_deterministically() {
    let seeds = corpus();
    let base = CampaignConfig::new(Algorithm::Classfuzz(UniquenessCriterion::StBr), 150, 41);
    let uniform = run_campaign(&seeds, &base);
    let maxcover = run_campaign(&seeds, &base.clone().with_seed_select(SeedSelect::MaxCover));
    let maxcover_again = run_campaign(&seeds, &base.clone().with_seed_select(SeedSelect::MaxCover));
    // Deterministic: two maxcover runs agree exactly.
    assert_eq!(gen_stream(&maxcover), gen_stream(&maxcover_again));
    assert_eq!(maxcover.test_classes, maxcover_again.test_classes);
    // And selection is not a silent no-op: reordering the pool changes
    // which parents the (identical) RNG stream picks, so the generated
    // byte streams must differ between uniform and maxcover.
    assert_ne!(
        gen_stream(&uniform),
        gen_stream(&maxcover),
        "maxcover selection produced the uniform candidate stream"
    );
}

#[test]
fn lockstep_multi_shard_capped_campaign_is_deterministic() {
    // Lockstep stays deterministic at any shard count; distillation must
    // not break that. Each shard distills its own replica at the same
    // round boundary, so two three-shard runs agree bit for bit.
    let seeds = corpus();
    let config = capped_config(240).with_schedule(Schedule::Lockstep);
    let first = run_campaign_parallel(&seeds, &config, 3).expect("engine error");
    let second = run_campaign_parallel(&seeds, &config, 3).expect("engine error");
    assert_eq!(first.test_classes, second.test_classes);
    assert_eq!(gen_stream(&first), gen_stream(&second));
    assert_eq!(
        first.acceptance.distill_passes,
        second.acceptance.distill_passes
    );
    assert_eq!(
        first.acceptance.distill_evicted,
        second.acceptance.distill_evicted
    );
}

#[test]
fn one_shard_lockstep_matches_sequential_with_distillation_on() {
    let seeds = corpus();
    let config = capped_config(200);
    let sequential = run_campaign(&seeds, &config);
    let lockstep =
        run_campaign_parallel(&seeds, &config.clone().with_schedule(Schedule::Lockstep), 1)
            .expect("engine error");
    assert_eq!(sequential.test_classes, lockstep.test_classes);
    assert_eq!(gen_stream(&sequential), gen_stream(&lockstep));
    assert_eq!(
        sequential.acceptance.distill_passes,
        lockstep.acceptance.distill_passes
    );
    assert_eq!(
        sequential.acceptance.distill_evicted,
        lockstep.acceptance.distill_evicted
    );
}

#[test]
fn pool_cap_composes_with_untraced_algorithms() {
    // randfuzz accepts everything and traces nothing, so its pool entries
    // carry no coverage; distillation must degrade to the pure cap pass
    // (evict smallest-first) instead of panicking or evicting nothing.
    let seeds = corpus();
    let config = CampaignConfig::new(Algorithm::Randfuzz, 200, 41).with_pool_cap(5);
    let first = run_campaign(&seeds, &config);
    let second = run_campaign(&seeds, &config);
    assert_eq!(gen_stream(&first), gen_stream(&second));
    assert!(
        first.acceptance.distill_passes > 0,
        "capped randfuzz never ran a distillation pass"
    );
    assert!(
        first.acceptance.distill_evicted > 0,
        "randfuzz grows the pool every iteration; a cap of 5 must evict"
    );
}

#[test]
fn shaped_corpora_replay_under_the_full_intelligence_stack() {
    // The targeted-generation knobs compose with selection + distillation:
    // a mixed-shape corpus through maxcover + cap is still deterministic.
    let seeds = SeedCorpus::generate_shaped(16, 41, SeedShape::Mixed).into_classes();
    let config = capped_config(150);
    let first = run_campaign(&seeds, &config);
    let second = run_campaign(&seeds, &config);
    assert_eq!(first.test_classes, second.test_classes);
    assert_eq!(gen_stream(&first), gen_stream(&second));
}
