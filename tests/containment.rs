//! Fault-containment integration tests (see DESIGN.md, "Fault
//! containment"): a campaign with an always-panicking mutator in the
//! rotation must run to its full budget, record every injected panic as a
//! crash, persist reproducers to the crash corpus, and stay deterministic
//! — with `num_shards = 1` bit-identical to the sequential engine,
//! crashes included.

use std::path::PathBuf;

use classfuzz::core::engine::{
    run_campaign, run_campaign_parallel, Algorithm, CampaignConfig, CrashSite,
};
use classfuzz::core::seeds::SeedCorpus;
use classfuzz::jimple::IrClass;

fn small_seeds() -> Vec<IrClass> {
    SeedCorpus::generate(10, 93).into_classes()
}

/// Uniquefuzz selects mutators uniformly, so the injected chaos mutator
/// (1 of 130) is actually drawn within these budgets; MCMC's local walk
/// rarely reaches the last index in a short campaign. Seed 29 is chosen so
/// every shard count below hits the chaos mutator at least once.
fn chaos_config(iterations: usize) -> CampaignConfig {
    CampaignConfig::new(Algorithm::Uniquefuzz, iterations, 29).with_panic_injection()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("classfuzz_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn chaos_campaign_runs_to_budget_and_records_crashes() {
    let seeds = small_seeds();
    let result = run_campaign_parallel(&seeds, &chaos_config(120), 4).expect("engine error");
    // Every iteration completed despite the panicking mutator.
    let iters: usize = result.shard_stats.iter().map(|s| s.iterations).sum();
    assert_eq!(iters, 120);
    assert!(
        !result.crashes.is_empty(),
        "chaos mutator never selected in 120 iterations"
    );
    for crash in &result.crashes {
        assert!(matches!(crash.site, CrashSite::Mutator { .. }));
        assert!(crash.shard_id < 4);
        assert!(
            crash.detail.contains("chaos mutator"),
            "detail: {}",
            crash.detail
        );
        assert!(
            !crash.bytes.is_empty(),
            "reproducer bytes must be preserved"
        );
    }
}

#[test]
fn one_shard_chaos_campaign_replays_sequential_crashes_exactly() {
    let seeds = small_seeds();
    let config = chaos_config(80);
    let sequential = run_campaign(&seeds, &config);
    let parallel = run_campaign_parallel(&seeds, &config, 1).expect("engine error");
    assert_eq!(sequential.crashes, parallel.crashes);
    assert_eq!(sequential.test_classes, parallel.test_classes);
    assert_eq!(
        sequential
            .gen_classes
            .iter()
            .map(|g| &g.bytes)
            .collect::<Vec<_>>(),
        parallel
            .gen_classes
            .iter()
            .map(|g| &g.bytes)
            .collect::<Vec<_>>()
    );
    assert_eq!(sequential.mutator_stats, parallel.mutator_stats);
}

#[test]
fn multi_shard_chaos_campaigns_are_deterministic() {
    let seeds = small_seeds();
    let config = chaos_config(100);
    let a = run_campaign_parallel(&seeds, &config, 4).expect("engine error");
    let b = run_campaign_parallel(&seeds, &config, 4).expect("engine error");
    assert_eq!(a.crashes, b.crashes);
    assert_eq!(a.test_classes, b.test_classes);
    assert_eq!(a.shard_stats, b.shard_stats);
}

#[test]
fn parallel_engine_writes_the_crash_corpus() {
    let dir = temp_dir("crashcorpus");
    let seeds = small_seeds();
    let config = chaos_config(120).with_crash_dir(dir.clone());
    let result = run_campaign_parallel(&seeds, &config, 4).expect("engine error");
    assert!(!result.crashes.is_empty());
    for (i, crash) in result.crashes.iter().enumerate() {
        let class = dir.join(format!("crash_{i:04}_{}.class", crash.site.label()));
        let bytes = std::fs::read(&class)
            .unwrap_or_else(|e| panic!("missing corpus entry {}: {e}", class.display()));
        assert_eq!(bytes, crash.bytes);
        let sidecar = std::fs::read_to_string(class.with_extension("txt")).expect("sidecar");
        assert!(sidecar.contains(&crash.detail));
        assert!(sidecar.contains(&format!("shard: {}", crash.shard_id)));
    }
    // Exactly one pair of files per crash — no stray or clobbered entries.
    let entries = std::fs::read_dir(&dir).expect("read corpus dir").count();
    assert_eq!(entries, result.crashes.len() * 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rerunning_into_a_populated_crash_dir_preserves_prior_reproducers() {
    let dir = temp_dir("crashrerun");
    let seeds = small_seeds();
    let config = chaos_config(120).with_crash_dir(dir.clone());
    let first = run_campaign_parallel(&seeds, &config, 2).expect("engine error");
    assert!(!first.crashes.is_empty());
    let before: std::collections::BTreeMap<String, Vec<u8>> = std::fs::read_dir(&dir)
        .expect("read corpus dir")
        .map(|e| {
            let path = e.expect("dir entry").path();
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            (name.clone(), std::fs::read(&path).expect("read entry"))
        })
        .collect();

    // Same campaign again, same directory: persist_crash must bump past
    // the first run's files instead of overwriting them.
    let second = run_campaign_parallel(&seeds, &config, 2).expect("engine error");
    assert_eq!(first.crashes, second.crashes, "chaos replay must match");
    for (name, bytes) in &before {
        assert_eq!(
            std::fs::read(dir.join(name)).ok().as_deref(),
            Some(bytes.as_slice()),
            "first-run reproducer {name} was clobbered by the rerun"
        );
    }
    let entries = std::fs::read_dir(&dir).expect("read corpus dir").count();
    assert_eq!(
        entries,
        (first.crashes.len() + second.crashes.len()) * 2,
        "every crash of both runs keeps its own classfile + sidecar pair"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn chaos_iterations_still_count_toward_selector_stats() {
    let seeds = small_seeds();
    let result = run_campaign_parallel(&seeds, &chaos_config(60), 2).expect("engine error");
    let selected: u64 = result.mutator_stats.iter().map(|s| s.selected).sum();
    assert_eq!(selected, 60, "a crashed iteration is consumed, not retried");
    // The chaos mutator sits one past the paper's 129 and never succeeds.
    let chaos = result.mutator_stats.last().expect("stats non-empty");
    assert!(chaos.selected > 0);
    assert_eq!(chaos.successes, 0);
}
