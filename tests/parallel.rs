//! Deterministic-replay tests for the sharded campaign engine.
//!
//! The contract under test (see DESIGN.md, "Parallel campaign
//! architecture"): a one-shard parallel campaign replays the sequential
//! engine bit for bit, and any shard count is deterministic and preserves
//! the acceptance invariants of the algorithm it runs.

use classfuzz::core::engine::{
    run_campaign, run_campaign_parallel, shard_rng_seed, Algorithm, CampaignConfig, CampaignResult,
};
use classfuzz::core::seeds::SeedCorpus;
use classfuzz::coverage::{SuiteIndex, UniquenessCriterion};
use classfuzz::jimple::lower::lower_class;
use classfuzz::vm::{Jvm, VmSpec};

fn small_seeds() -> Vec<classfuzz::jimple::IrClass> {
    SeedCorpus::generate(10, 93).into_classes()
}

/// Rebuilds the coverage-uniqueness index a campaign's accepted suite
/// induces, by re-running every test class on the reference VM. Comparing
/// these indices compares the *trace contents* behind the acceptance
/// decisions, not just the counts.
fn rebuild_index(result: &CampaignResult, criterion: UniquenessCriterion) -> SuiteIndex {
    let reference = Jvm::new(VmSpec::hotspot9());
    let mut index = SuiteIndex::new(criterion);
    for bytes in result.test_bytes() {
        let trace = reference
            .run_traced(&bytes)
            .trace
            .expect("accepted classes have reference traces");
        index.insert(&trace);
    }
    index
}

#[test]
fn one_shard_replays_sequential_for_every_algorithm() {
    let seeds = small_seeds();
    for algorithm in Algorithm::table4_lineup() {
        let config = CampaignConfig::new(algorithm, 60, 17);
        let sequential = run_campaign(&seeds, &config);
        let parallel = run_campaign_parallel(&seeds, &config, 1).expect("engine error");

        assert_eq!(sequential.iterations, parallel.iterations, "{algorithm}");
        assert_eq!(
            sequential.gen_classes.len(),
            parallel.gen_classes.len(),
            "{algorithm}: generated counts diverge"
        );
        assert_eq!(
            sequential.test_classes, parallel.test_classes,
            "{algorithm}: accepted indices diverge"
        );
        for (i, (s, p)) in sequential
            .gen_classes
            .iter()
            .zip(&parallel.gen_classes)
            .enumerate()
        {
            assert_eq!(s.bytes, p.bytes, "{algorithm}: class {i} bytes diverge");
            assert_eq!(s.mutator_id, p.mutator_id, "{algorithm}: class {i} mutator");
            assert_eq!(s.accepted, p.accepted, "{algorithm}: class {i} verdict");
        }
        assert_eq!(
            sequential.mutator_stats, parallel.mutator_stats,
            "{algorithm}"
        );
        assert_eq!(sequential.shard_stats, parallel.shard_stats, "{algorithm}");

        // The accepted suites induce identical trace indices.
        let criterion = match algorithm {
            Algorithm::Classfuzz(c) => c,
            _ => UniquenessCriterion::StBr,
        };
        assert_eq!(
            rebuild_index(&sequential, criterion),
            rebuild_index(&parallel, criterion),
            "{algorithm}: trace-index contents diverge"
        );
    }
}

#[test]
fn four_shards_accept_no_duplicate_traces_under_stbr() {
    let seeds = small_seeds();
    let config = CampaignConfig::new(Algorithm::Classfuzz(UniquenessCriterion::StBr), 120, 5);
    let result = run_campaign_parallel(&seeds, &config, 4).expect("engine error");
    assert!(!result.test_classes.is_empty(), "campaign accepted nothing");

    let reference = Jvm::new(VmSpec::hotspot9());
    // Seed traces participate in uniqueness too (Algorithm 1 line 1).
    let mut seen = std::collections::BTreeSet::new();
    for seed in &seeds {
        let bytes = lower_class(seed).to_bytes();
        if let Some(trace) = reference.run_traced(&bytes).trace {
            seen.insert((trace.stats().stmt, trace.stats().br));
        }
    }
    for bytes in result.test_bytes() {
        let trace = reference
            .run_traced(&bytes)
            .trace
            .expect("accepted classes have reference traces");
        let key = (trace.stats().stmt, trace.stats().br);
        assert!(
            seen.insert(key),
            "accepted mutant duplicates the [stbr] statistic {key:?}"
        );
    }
}

#[test]
fn multi_shard_campaigns_are_deterministic() {
    let seeds = small_seeds();
    let config = CampaignConfig::new(Algorithm::Classfuzz(UniquenessCriterion::StBr), 100, 23);
    let a = run_campaign_parallel(&seeds, &config, 4).expect("engine error");
    let b = run_campaign_parallel(&seeds, &config, 4).expect("engine error");
    assert_eq!(a.test_classes, b.test_classes);
    assert_eq!(a.shard_stats, b.shard_stats);
    assert_eq!(a.mutator_stats, b.mutator_stats);
    assert_eq!(
        a.gen_classes.iter().map(|g| &g.bytes).collect::<Vec<_>>(),
        b.gen_classes.iter().map(|g| &g.bytes).collect::<Vec<_>>()
    );
}

#[test]
fn shard_accounting_adds_up() {
    let seeds = small_seeds();
    let config = CampaignConfig::new(Algorithm::Uniquefuzz, 101, 3);
    let result = run_campaign_parallel(&seeds, &config, 4).expect("engine error");
    assert_eq!(result.shard_stats.len(), 4);
    // 101 = 26 + 25 + 25 + 25: the remainder lands on the lowest shard ids.
    let iters: Vec<usize> = result.shard_stats.iter().map(|s| s.iterations).collect();
    assert_eq!(iters, vec![26, 25, 25, 25]);
    let generated: usize = result.shard_stats.iter().map(|s| s.generated).sum();
    let accepted: usize = result.shard_stats.iter().map(|s| s.accepted).sum();
    assert_eq!(generated, result.gen_classes.len());
    assert_eq!(accepted, result.test_classes.len());
    let selected: u64 = result.mutator_stats.iter().map(|s| s.selected).sum();
    assert_eq!(selected, 101);
}

#[test]
fn shard_seeds_decorrelate_but_shard_zero_matches_campaign_seed() {
    assert_eq!(shard_rng_seed(42, 0), 42);
    let seeds: Vec<u64> = (0..8).map(|s| shard_rng_seed(42, s)).collect();
    let distinct: std::collections::BTreeSet<&u64> = seeds.iter().collect();
    assert_eq!(distinct.len(), seeds.len(), "shard seeds must be distinct");
}

#[test]
fn degenerate_campaigns_return_empty_results() {
    let config = CampaignConfig::new(Algorithm::Randfuzz, 50, 1);
    // No seeds: nothing to mutate, and crucially no deadlocked shards.
    let empty = run_campaign_parallel(&[], &config, 4).expect("engine error");
    assert!(empty.gen_classes.is_empty());
    assert!(empty.test_classes.is_empty());
    assert_eq!(empty.secs_per_generated(), 0.0);
    assert_eq!(empty.secs_per_test(), 0.0);
    // Zero iterations.
    let none = run_campaign_parallel(
        &small_seeds(),
        &CampaignConfig::new(Algorithm::Randfuzz, 0, 1),
        4,
    )
    .expect("engine error");
    assert!(none.gen_classes.is_empty());
    assert_eq!(none.secs_per_test(), 0.0);
}

/// Wall-clock speedup needs real hardware parallelism; single-core CI
/// machines (where every shard handoff is a scheduler round-trip) make any
/// timing assertion meaningless, so this runs only on demand.
#[test]
#[ignore = "timing assertion; requires a multi-core machine"]
fn four_shards_beat_one_on_wall_clock() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores < 4 {
        eprintln!("skipping: only {cores} core(s) available");
        return;
    }
    let seeds = SeedCorpus::generate(40, 7).into_classes();
    let config = CampaignConfig::new(Algorithm::Classfuzz(UniquenessCriterion::StBr), 2000, 7);
    let sequential = run_campaign_parallel(&seeds, &config, 1).expect("engine error");
    let parallel = run_campaign_parallel(&seeds, &config, 4).expect("engine error");
    assert!(
        parallel.elapsed < sequential.elapsed,
        "4 shards ({:?}) should beat 1 shard ({:?}) at equal iteration count",
        parallel.elapsed,
        sequential.elapsed
    );
}
