//! Property tests pinning the allocation-lean generation path to the
//! simple one it replaced:
//!
//! * scratch lowering (`lower_class_bytes` through a reused
//!   [`LowerScratch`]) is byte-for-byte the cold
//!   `lower_class(..).to_bytes()`, including across dirty reuse;
//! * a copy-on-write `IrClass::clone` followed by any of the 129 mutators
//!   produces exactly what a `deep_clone` would — and never writes through
//!   to the original, which is what the engine's pool relies on when every
//!   iteration clones a shared pool entry.

use classfuzz::core::seeds::SeedCorpus;
use classfuzz::jimple::lower::{lower_class, lower_class_bytes, LowerScratch};
use classfuzz::jimple::IrClass;
use classfuzz::mutation::{registry, MutationCtx};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A diverse batch of IR classes: a generated corpus pushed through a few
/// random mutations, so the lowerer sees mutated shapes (odd hierarchies,
/// swapped bodies, injected members), not just pristine seeds.
fn mutated_batch(corpus_seed: u64, rounds: usize) -> Vec<IrClass> {
    let mut classes = SeedCorpus::generate(6, corpus_seed).into_classes();
    let donors = classes.clone();
    let mutators = registry::all_mutators();
    let mut rng = StdRng::seed_from_u64(corpus_seed ^ 0x5eed);
    for _ in 0..rounds {
        let pick = rng.gen_range(0..classes.len());
        let id = rng.gen_range(0..mutators.len());
        let mut ctx = MutationCtx::new(&mut rng, &donors);
        // Not-applicable mutators simply leave the class unchanged.
        let _ = mutators[id].apply(&mut classes[pick], &mut ctx);
    }
    classes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// One dirty [`LowerScratch`] carried across a whole random batch
    /// lowers every class to exactly the cold path's bytes.
    #[test]
    fn scratch_lowering_matches_cold(corpus_seed in any::<u64>()) {
        let classes = mutated_batch(corpus_seed, 24);
        let mut scratch = LowerScratch::new();
        for class in &classes {
            let cold = lower_class(class).to_bytes();
            let fast = lower_class_bytes(class, &mut scratch);
            prop_assert_eq!(&cold, &fast, "scratch lowering diverged for {}", class.name);
            // Reuse on the same class is stable, not merely first-call
            // correct.
            prop_assert_eq!(&cold, &lower_class_bytes(class, &mut scratch));
        }
    }

    /// For every mutator id: CoW clone + mutate ≡ deep clone + mutate
    /// under identical RNG streams, and the shared original survives
    /// untouched.
    #[test]
    fn cow_clone_mutate_matches_deep_clone(corpus_seed in any::<u64>(), draw_seed in any::<u64>()) {
        let classes = mutated_batch(corpus_seed, 8);
        let donors = classes.clone();
        let original = &classes[0];
        let pristine = original.deep_clone();
        for mutator in registry::all_mutators() {
            let mut cow = IrClass::clone(original);
            let mut deep = original.deep_clone();

            let mut rng_a = StdRng::seed_from_u64(draw_seed);
            let mut ctx_a = MutationCtx::new(&mut rng_a, &donors);
            let res_a = mutator.apply(&mut cow, &mut ctx_a);

            let mut rng_b = StdRng::seed_from_u64(draw_seed);
            let mut ctx_b = MutationCtx::new(&mut rng_b, &donors);
            let res_b = mutator.apply(&mut deep, &mut ctx_b);

            prop_assert_eq!(res_a.is_ok(), res_b.is_ok(), "mutator {} applicability diverged", mutator.id);
            prop_assert_eq!(&cow, &deep, "mutator {} result diverged on the CoW clone", mutator.id);
            // Arc aliasing safety: mutating the CoW clone never reaches
            // the shared original.
            prop_assert_eq!(original, &pristine, "mutator {} wrote through the CoW clone", mutator.id);
        }
    }
}
