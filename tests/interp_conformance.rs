//! Conformance-grade golden tests for the interpreter: hand-assembled
//! classfiles exercising instruction-level corner semantics (wide
//! arithmetic wrap and divide-by-zero, `iinc` wrapping, switch edge keys,
//! array traps, handler dispatch order), each pinned to an expected
//! normalized [`ExecOutcome`] that must be identical on every profile.
//!
//! Lowered Jimple never emits `iinc` or `tableswitch` (the lowerer always
//! chooses `lookupswitch`), so these tests assemble instruction streams
//! directly with the classfile builder — the only way those interpreter
//! paths get conformance coverage.
//!
//! The file also pins the budget-determinism contract: a `goto`-only
//! infinite loop exhausts the step budget at *exactly* `step_budget + 1`
//! charged steps on every profile, in every thread, and under
//! `run_contained` — the invariant that makes `Timeout` verdicts
//! replay-stable (see the fuel comment at the interpreter loop head).

use classfuzz::classfile::{
    CodeAttribute, ConstIndex, ConstantPool, ExceptionTableEntry, FieldAccess, Instruction,
    LookupSwitch, MethodAccess, Opcode, TableSwitch,
};
use classfuzz::vm::interp::{ExecError, Machine, RtValue};
use classfuzz::vm::{
    run_contained, Cov, ExecOutcome, Jvm, JvmErrorKind, Outcome, Phase, UserClass, VmSpec, World,
};

/// An exception-table entry expressed in instruction indices; the assembler
/// rewrites them to byte offsets. `end` may equal the instruction count
/// (exclusive end of code).
struct Handler {
    start: usize,
    end: usize,
    handler: usize,
    catch_type: ConstIndex,
}

/// Rewrites branch/switch targets given as *instruction indices* into the
/// absolute byte offsets the code array stores, returning the instruction
/// list plus the pc of each instruction (with one trailing sentinel: the
/// total code length).
fn resolve_targets(mut insns: Vec<Instruction>) -> (Vec<Instruction>, Vec<u32>) {
    let mut pcs = Vec::with_capacity(insns.len() + 1);
    let mut pc = 0u32;
    for insn in &insns {
        pcs.push(pc);
        // Targets do not influence encoded length, so index-valued targets
        // are safe to measure.
        pc += insn.encoded_len(pc);
    }
    pcs.push(pc);
    for insn in &mut insns {
        match insn {
            Instruction::Branch(_, t) => *t = pcs[*t as usize],
            Instruction::TableSwitch(ts) => {
                ts.default = pcs[ts.default as usize];
                for t in &mut ts.targets {
                    *t = pcs[*t as usize];
                }
            }
            Instruction::LookupSwitch(ls) => {
                ls.default = pcs[ls.default as usize];
                for (_, t) in &mut ls.pairs {
                    *t = pcs[*t as usize];
                }
            }
            _ => {}
        }
    }
    (insns, pcs)
}

/// Assembles a class whose static `main` runs the given instruction stream.
/// The build closure receives the constant pool and returns the
/// instructions (index-valued targets) plus exception handlers
/// (index-valued ranges).
fn build_main(
    name: &str,
    max_stack: u16,
    max_locals: u16,
    build: impl FnOnce(&mut ConstantPool) -> (Vec<Instruction>, Vec<Handler>),
) -> Vec<u8> {
    let mut builder =
        classfuzz::classfile::ClassFile::builder(name).super_class("java/lang/Object");
    let (insns, handlers) = build(builder.constant_pool_mut());
    let (instructions, pcs) = resolve_targets(insns);
    let exception_table = handlers
        .iter()
        .map(|h| ExceptionTableEntry {
            start_pc: pcs[h.start] as u16,
            end_pc: pcs[h.end] as u16,
            handler_pc: pcs[h.handler] as u16,
            catch_type: h.catch_type,
        })
        .collect();
    builder
        .method(
            MethodAccess::PUBLIC | MethodAccess::STATIC,
            "main",
            "([Ljava/lang/String;)V",
            CodeAttribute {
                max_stack,
                max_locals,
                instructions,
                exception_table,
                attributes: Vec::new(),
            },
        )
        .build()
        .to_bytes()
}

/// Like [`build_main`], but the class also declares a `static int flag`
/// (zero-initialized by static preparation) and the build closure
/// receives its field-ref — the verifiable way to carry loop state, since
/// the dataflow verifier rejects reads of uninitialized locals.
fn build_flag_main(
    name: &str,
    build: impl FnOnce(&mut ConstantPool, ConstIndex) -> Vec<Instruction>,
) -> Vec<u8> {
    let mut builder = classfuzz::classfile::ClassFile::builder(name)
        .super_class("java/lang/Object")
        .field(FieldAccess::PUBLIC | FieldAccess::STATIC, "flag", "I");
    let flag = builder.constant_pool_mut().field_ref(name, "flag", "I");
    let (instructions, _) = resolve_targets(build(builder.constant_pool_mut(), flag));
    builder
        .method(
            MethodAccess::PUBLIC | MethodAccess::STATIC,
            "main",
            "([Ljava/lang/String;)V",
            CodeAttribute {
                max_stack: 2,
                max_locals: 1,
                instructions,
                exception_table: Vec::new(),
                attributes: Vec::new(),
            },
        )
        .build()
        .to_bytes()
}

/// The `getstatic System.out / <value producer> / println` tail.
fn println_int(cp: &mut ConstantPool, producer: Instruction) -> Vec<Instruction> {
    let out = cp.field_ref("java/lang/System", "out", "Ljava/io/PrintStream;");
    let println = cp.method_ref("java/io/PrintStream", "println", "(I)V");
    vec![
        Instruction::Field(Opcode::Getstatic, out),
        producer,
        Instruction::Invoke(Opcode::Invokevirtual, println),
    ]
}

/// Runs the class on every profile and asserts each normalized execution
/// verdict equals `expected` — the conformance contract: corner semantics
/// may not differ between vendor policies.
fn assert_uniform_verdict(bytes: &[u8], expected: &ExecOutcome, what: &str) {
    for spec in VmSpec::all_five() {
        let name = spec.name.clone();
        let result = Jvm::new(spec).run(bytes);
        let got = ExecOutcome::of(&result.outcome);
        assert_eq!(
            &got, expected,
            "{what} on {name}: outcome {:?}",
            result.outcome
        );
    }
}

#[test]
fn wide_division_overflow_wraps_and_zero_traps() {
    // Long.MIN_VALUE / -1 has no positive representation: the JVM wraps it
    // back to Long.MIN_VALUE, and the matching remainder is 0.
    let bytes = build_main("conf/LongDiv", 6, 4, |cp| {
        let min = cp.long(i64::MIN);
        let minus_one = cp.long(-1);
        let out = cp.field_ref("java/lang/System", "out", "Ljava/io/PrintStream;");
        let println_j = cp.method_ref("java/io/PrintStream", "println", "(J)V");
        let print_long = |insns: &mut Vec<Instruction>, op: Opcode| {
            insns.extend([
                Instruction::Ldc2W(min),
                Instruction::Ldc2W(minus_one),
                Instruction::Simple(op),
                Instruction::Local(Opcode::Lstore, 1),
                Instruction::Field(Opcode::Getstatic, out),
                Instruction::Local(Opcode::Lload, 1),
                Instruction::Invoke(Opcode::Invokevirtual, println_j),
            ]);
        };
        let mut insns = Vec::new();
        print_long(&mut insns, Opcode::Ldiv);
        print_long(&mut insns, Opcode::Lrem);
        insns.push(Instruction::Simple(Opcode::Return));
        (insns, Vec::new())
    });
    assert_uniform_verdict(
        &bytes,
        &ExecOutcome::Completed {
            stdout: vec!["-9223372036854775808".into(), "0".into()],
        },
        "Long.MIN_VALUE / -1",
    );
}

#[test]
fn wide_division_by_zero_traps_uniformly() {
    let bytes = build_main("conf/LongZero", 4, 4, |cp| {
        let one = cp.long(1);
        let zero = cp.long(0);
        (
            vec![
                Instruction::Ldc2W(one),
                Instruction::Ldc2W(zero),
                Instruction::Simple(Opcode::Ldiv),
                Instruction::Local(Opcode::Lstore, 1),
                Instruction::Simple(Opcode::Return),
            ],
            Vec::new(),
        )
    });
    assert_uniform_verdict(
        &bytes,
        &ExecOutcome::Trapped {
            kind: JvmErrorKind::ArithmeticException,
        },
        "1L / 0L",
    );
}

#[test]
fn iinc_wraps_at_int_max() {
    let bytes = build_main("conf/IincWrap", 2, 2, |cp| {
        let max = cp.integer(i32::MAX);
        let mut insns = vec![
            Instruction::Ldc(max),
            Instruction::Local(Opcode::Istore, 1),
            Instruction::Iinc { index: 1, delta: 1 },
        ];
        insns.extend(println_int(cp, Instruction::Local(Opcode::Iload, 1)));
        insns.push(Instruction::Simple(Opcode::Return));
        (insns, Vec::new())
    });
    assert_uniform_verdict(
        &bytes,
        &ExecOutcome::Completed {
            stdout: vec!["-2147483648".into()],
        },
        "iinc past Integer.MAX_VALUE",
    );
}

/// A three-way printing switch: `key` is pushed, the switch (built by
/// `make`) dispatches to arms printing 1 and 2 or a default printing 3.
/// Arms start at instruction indices 2, 6, and 10.
fn switch_class(
    name: &str,
    key: i32,
    make: impl FnOnce(usize, usize, usize) -> Instruction,
) -> Vec<u8> {
    build_main(name, 2, 2, |cp| {
        let k = cp.integer(key);
        let mut insns = vec![Instruction::Ldc(k), make(2, 6, 10)];
        for n in 1..=3i8 {
            insns.extend(println_int(cp, Instruction::Bipush(n)));
            insns.push(Instruction::Simple(Opcode::Return));
        }
        (insns, Vec::new())
    })
}

fn expect_printed(bytes: &[u8], line: &str, what: &str) {
    assert_uniform_verdict(
        bytes,
        &ExecOutcome::Completed {
            stdout: vec![line.into()],
        },
        what,
    );
}

#[test]
fn tableswitch_edge_keys() {
    // Keys at the very top of the int range: the in-range index
    // `key - low` must not overflow, and the high edge selects the last
    // table slot.
    let table = |a: usize, b: usize, d: usize| {
        Instruction::TableSwitch(TableSwitch {
            default: d as u32,
            low: i32::MAX - 1,
            high: i32::MAX,
            targets: vec![a as u32, b as u32],
        })
    };
    expect_printed(
        &switch_class("conf/TsLow", i32::MAX - 1, table),
        "1",
        "tableswitch low edge",
    );
    expect_printed(
        &switch_class("conf/TsHigh", i32::MAX, table),
        "2",
        "tableswitch high edge",
    );
    expect_printed(
        &switch_class("conf/TsUnder", i32::MIN, table),
        "3",
        "tableswitch key below low",
    );
}

#[test]
fn lookupswitch_edge_keys() {
    let lookup = |a: usize, b: usize, d: usize| {
        Instruction::LookupSwitch(LookupSwitch {
            default: d as u32,
            pairs: vec![(i32::MIN, a as u32), (i32::MAX, b as u32)],
        })
    };
    expect_printed(
        &switch_class("conf/LsMin", i32::MIN, lookup),
        "1",
        "lookupswitch Integer.MIN_VALUE key",
    );
    expect_printed(
        &switch_class("conf/LsMax", i32::MAX, lookup),
        "2",
        "lookupswitch Integer.MAX_VALUE key",
    );
    expect_printed(
        &switch_class("conf/LsMiss", 0, lookup),
        "3",
        "lookupswitch unmatched key",
    );
}

#[test]
fn negative_array_size_traps() {
    let bytes = build_main("conf/NegSize", 2, 2, |_cp| {
        (
            vec![
                Instruction::Bipush(-3),
                Instruction::NewArray(10), // T_INT
                Instruction::Simple(Opcode::Pop),
                Instruction::Simple(Opcode::Return),
            ],
            Vec::new(),
        )
    });
    assert_uniform_verdict(
        &bytes,
        &ExecOutcome::Trapped {
            kind: JvmErrorKind::NegativeArraySizeException,
        },
        "newarray with length -3",
    );
}

#[test]
fn array_load_out_of_bounds_traps() {
    let bytes = build_main("conf/Oob", 3, 3, |_cp| {
        (
            vec![
                Instruction::Simple(Opcode::Iconst2),
                Instruction::NewArray(10),
                Instruction::Local(Opcode::Astore, 1),
                Instruction::Local(Opcode::Aload, 1),
                Instruction::Simple(Opcode::Iconst5),
                Instruction::Simple(Opcode::Iaload),
                Instruction::Simple(Opcode::Pop),
                Instruction::Simple(Opcode::Return),
            ],
            Vec::new(),
        )
    });
    assert_uniform_verdict(
        &bytes,
        &ExecOutcome::Trapped {
            kind: JvmErrorKind::ArrayIndexOutOfBoundsException,
        },
        "iaload index 5 of new int[2]",
    );
}

/// Builds the handler-order class: `1 / 0` throws `ArithmeticException`
/// inside a range protected by two catch clauses given in table order.
/// Each handler arm prints its number. JVMS §2.10: the *first* matching
/// entry in table order wins, even when a later entry is more specific.
fn two_handler_class(name: &str, first: &str, second: &str) -> Vec<u8> {
    build_main(name, 2, 3, |cp| {
        let c1 = cp.class(first);
        let c2 = cp.class(second);
        // 0..=2: the protected divide; 3,4: fall-through (never reached);
        // 5..=9: handler one; 10..: handler two.
        let mut insns = vec![
            Instruction::Simple(Opcode::Iconst1), // 0
            Instruction::Simple(Opcode::Iconst0), // 1
            Instruction::Simple(Opcode::Idiv),    // 2 -- throws
            Instruction::Simple(Opcode::Pop),     // 3 (never reached)
            Instruction::Simple(Opcode::Return),  // 4
        ];
        for n in 1..=2i8 {
            insns.push(Instruction::Local(Opcode::Astore, 2)); // catch entry
            insns.extend(println_int(cp, Instruction::Bipush(n)));
            insns.push(Instruction::Simple(Opcode::Return));
        }
        let handlers = vec![
            Handler {
                start: 0,
                end: 3,
                handler: 5,
                catch_type: c1,
            },
            Handler {
                start: 0,
                end: 3,
                handler: 10,
                catch_type: c2,
            },
        ];
        (insns, handlers)
    })
}

#[test]
fn exception_handlers_dispatch_in_table_order() {
    // RuntimeException listed first catches the ArithmeticException even
    // though the second clause names it exactly...
    expect_printed(
        &two_handler_class(
            "conf/CatchWide",
            "java/lang/RuntimeException",
            "java/lang/ArithmeticException",
        ),
        "1",
        "supertype clause listed first",
    );
    // ...and swapping the table order flips the winning handler.
    expect_printed(
        &two_handler_class(
            "conf/CatchNarrow",
            "java/lang/ArithmeticException",
            "java/lang/RuntimeException",
        ),
        "1",
        "exact clause listed first",
    );
}

/// `main` that is just `goto`-to-self: the minimal nonterminating method.
fn forever_class() -> Vec<u8> {
    build_main("conf/Forever", 1, 1, |_cp| {
        (vec![Instruction::Branch(Opcode::Goto, 0)], Vec::new())
    })
}

#[test]
fn goto_loop_times_out_on_every_profile() {
    let bytes = forever_class();
    assert_uniform_verdict(&bytes, &ExecOutcome::Timeout, "goto-to-self loop");
    // The startup outcome is the specified budget rejection, not a hang or
    // a crash.
    for spec in VmSpec::all_five() {
        let result = Jvm::new(spec).run(&bytes);
        match &result.outcome {
            Outcome::Rejected { phase, error } => {
                assert_eq!(*phase, Phase::Runtime);
                assert_eq!(error.kind, JvmErrorKind::ExecutionBudgetExceeded);
            }
            other => panic!("expected budget rejection, got {other:?}"),
        }
    }
}

/// Runs the forever class on a bare [`Machine`] and returns the consumed
/// fuel after budget exhaustion.
fn steps_at_exhaustion(spec: &VmSpec) -> u64 {
    let cf = classfuzz::classfile::ClassFile::from_bytes(&forever_class()).expect("decodes");
    let class = UserClass::summarize(cf);
    let world = World::new(spec, vec![class.clone()]);
    let mut machine = Machine::new(&world, spec);
    machine.prepare_statics(&class);
    let err = machine
        .call_static(
            &class,
            "main",
            "([Ljava/lang/String;)V",
            vec![RtValue::Ref(None)],
            &mut Cov::disabled(),
        )
        .expect_err("the loop must exhaust the budget");
    assert!(
        matches!(err, ExecError::BudgetExceeded),
        "expected BudgetExceeded"
    );
    machine.steps()
}

#[test]
fn budget_exhaustion_charges_identical_fuel_everywhere() {
    // Every profile, same class, bare interpreter: the loop is cut off at
    // exactly `step_budget + 1` charged steps — the charge that trips the
    // limit — which is what makes `Timeout` verdicts deterministic.
    for spec in VmSpec::all_five() {
        assert_eq!(
            steps_at_exhaustion(&spec),
            spec.step_budget + 1,
            "fuel at exhaustion on {}",
            spec.name
        );
    }
    // The count is thread-independent (no global state feeds the budget)...
    let handles: Vec<_> = (0..2)
        .map(|_| std::thread::spawn(|| steps_at_exhaustion(&VmSpec::hotspot9())))
        .collect();
    for h in handles {
        assert_eq!(
            h.join().expect("thread"),
            VmSpec::hotspot9().step_budget + 1
        );
    }
    // ...and unchanged under the panic-containment wrapper the campaign
    // engines route every VM run through.
    let contained = run_contained(|| steps_at_exhaustion(&VmSpec::gij()));
    assert_eq!(contained, Ok(VmSpec::gij().step_budget + 1));
}

// --- Prepared ≡ cold equivalence ---------------------------------------
//
// PR 9 split interpretation into a prepare-once cached path
// (`Machine::new`, the production configuration) and a cold
// prepare-per-call path (`Machine::uncached`, the bench baseline). The
// two must be observably identical: same result value, same captured
// stdout, same consumed fuel — on every profile, for every preparation
// corner (switch targets at the first/last instruction, a backward
// `goto` landing on index 0, exception-handler ranges, recursion at the
// depth guard).

/// Runs `main` on a bare [`Machine`] in the requested mode and returns
/// everything observable: the call result, captured stdout, and fuel.
#[allow(clippy::type_complexity)]
fn run_bare(
    bytes: &[u8],
    spec: &VmSpec,
    cold: bool,
) -> (Result<Option<RtValue>, ExecError>, Vec<String>, u64) {
    let cf = classfuzz::classfile::ClassFile::from_bytes(bytes).expect("decodes");
    let class = UserClass::summarize(cf);
    let world = World::new(spec, vec![class.clone()]);
    let mut machine = if cold {
        Machine::uncached(&world, spec)
    } else {
        Machine::new(&world, spec)
    };
    machine.prepare_statics(&class);
    let result = machine.call_static(
        &class,
        "main",
        "([Ljava/lang/String;)V",
        vec![RtValue::Ref(None)],
        &mut Cov::disabled(),
    );
    let stdout = machine.stdout.clone();
    let steps = machine.steps();
    (result, stdout, steps)
}

/// The equivalence oracle: prepared and cold execution of `bytes` agree
/// on all five profiles, and a second prepared run (now hitting the
/// warm per-class cache) agrees again.
fn assert_prepared_matches_cold(bytes: &[u8], what: &str) {
    for spec in VmSpec::all_five() {
        let prepared = run_bare(bytes, &spec, false);
        let cold = run_bare(bytes, &spec, true);
        assert_eq!(prepared, cold, "{what}: prepared != cold on {}", spec.name);
        let rewarmed = run_bare(bytes, &spec, false);
        assert_eq!(
            prepared, rewarmed,
            "{what}: warm rerun drifted on {}",
            spec.name
        );
    }
}

#[test]
fn prepared_matches_cold_on_switch_boundary_targets() {
    // A tableswitch whose arm targets *instruction 0* (byte offset 0, the
    // smallest resolvable target) and whose default targets the *last*
    // instruction. A static flag makes the backward hop terminate: the
    // second visit to instruction 0 exits through the print.
    let ts_first = build_flag_main("conf/PrepTsFirst", |cp, flag| {
        let k = cp.integer(7);
        let mut insns = vec![
            Instruction::Field(Opcode::Getstatic, flag), // 0: switch target, byte 0
            Instruction::Branch(Opcode::Ifne, 6),        // 1: second visit -> exit
            Instruction::Simple(Opcode::Iconst1),        // 2
            Instruction::Field(Opcode::Putstatic, flag), // 3
            Instruction::Ldc(k),                         // 4
            Instruction::TableSwitch(TableSwitch {
                default: 9, // 5: default -> last instruction
                low: 7,
                high: 7,
                targets: vec![0],
            }),
        ];
        insns.extend(println_int(cp, Instruction::Bipush(1))); // 6..=8
        insns.push(Instruction::Simple(Opcode::Return)); // 9: default target + exit
        insns
    });
    assert_prepared_matches_cold(&ts_first, "tableswitch arm at instruction 0");
    expect_printed(&ts_first, "1", "tableswitch backward arm to byte 0");

    // A lookupswitch whose only pair targets the *last* instruction.
    let ls_last = build_main("conf/PrepLsLast", 2, 2, |cp| {
        let k = cp.integer(-1);
        let mut insns = vec![
            Instruction::Ldc(k),
            Instruction::LookupSwitch(LookupSwitch {
                default: 2,
                pairs: vec![(-1, 5)],
            }),
        ];
        insns.extend(println_int(cp, Instruction::Bipush(3))); // 2..=4: default arm
        insns.push(Instruction::Simple(Opcode::Return)); // 5: matched arm
        (insns, Vec::new())
    });
    assert_prepared_matches_cold(&ls_last, "lookupswitch target at last instruction");
}

#[test]
fn prepared_matches_cold_on_backward_goto_to_zero() {
    // A two-pass loop whose backedge is a `goto` to instruction index 0 —
    // byte offset 0, the smallest possible branch target.
    let bytes = build_flag_main("conf/PrepBack", |cp, flag| {
        let mut insns = vec![
            Instruction::Field(Opcode::Getstatic, flag), // 0: loop head, byte 0
            Instruction::Branch(Opcode::Ifne, 5),        // 1: second pass -> exit
            Instruction::Simple(Opcode::Iconst1),        // 2
            Instruction::Field(Opcode::Putstatic, flag), // 3
            Instruction::Branch(Opcode::Goto, 0),        // 4: backedge to 0
        ];
        insns.extend(println_int(cp, Instruction::Bipush(7))); // 5..=7
        insns.push(Instruction::Simple(Opcode::Return)); // 8
        insns
    });
    assert_prepared_matches_cold(&bytes, "backward goto to instruction 0");
    expect_printed(&bytes, "7", "loop exits after the backward hop");
}

#[test]
fn prepared_matches_cold_on_exception_handler_ranges() {
    // Handler-range semantics must survive preparation: the two-clause
    // table-order classes throw inside a protected range and recover.
    for (name, first, second) in [
        (
            "conf/PrepCatchA",
            "java/lang/RuntimeException",
            "java/lang/ArithmeticException",
        ),
        (
            "conf/PrepCatchB",
            "java/lang/ArithmeticException",
            "java/lang/RuntimeException",
        ),
    ] {
        let bytes = two_handler_class(name, first, second);
        assert_prepared_matches_cold(&bytes, "two-clause handler dispatch");
        expect_printed(&bytes, "1", "handler order after preparation");
    }
    // And an *uncaught* throw outside every protected range propagates
    // identically on both paths.
    let uncaught = build_main("conf/PrepUncaught", 2, 3, |cp| {
        let c = cp.class("java/lang/IllegalStateException");
        let insns = vec![
            Instruction::Simple(Opcode::Iconst1), // 0
            Instruction::Simple(Opcode::Iconst0), // 1
            Instruction::Simple(Opcode::Idiv),    // 2: throws outside 3..4
            Instruction::Simple(Opcode::Pop),     // 3
            Instruction::Simple(Opcode::Return),  // 4
        ];
        let handlers = vec![Handler {
            start: 3,
            end: 4,
            handler: 4,
            catch_type: c,
        }];
        (insns, handlers)
    });
    assert_prepared_matches_cold(&uncaught, "throw outside the protected range");
}

#[test]
fn prepared_matches_cold_at_the_recursion_guard() {
    // `main` calls itself unconditionally: the interpreter's depth guard
    // (depth > 24 -> StackOverflowError) must trip at the same depth with
    // the same verdict on both paths — the nested invokes all hit the
    // same prepared method through the per-class cache.
    let bytes = build_main("conf/PrepRecurse", 2, 1, |cp| {
        let me = cp.method_ref("conf/PrepRecurse", "main", "([Ljava/lang/String;)V");
        (
            vec![
                Instruction::Simple(Opcode::AconstNull),
                Instruction::Invoke(Opcode::Invokestatic, me),
                Instruction::Simple(Opcode::Return),
            ],
            Vec::new(),
        )
    });
    assert_prepared_matches_cold(&bytes, "unbounded recursion at the depth guard");
    assert_uniform_verdict(
        &bytes,
        &ExecOutcome::Trapped {
            kind: JvmErrorKind::StackOverflowError,
        },
        "self-recursive main",
    );
}

// --- Bounded superclass resolution -------------------------------------

/// An empty class `deep/C<i>` extending `sup`; the chain root also
/// carries a static `ping()V` so the probed method *exists* — just too
/// far up the chain for the bounded walk to reach.
fn chain_class(i: usize, sup: &str, with_ping: bool) -> Vec<u8> {
    let mut builder =
        classfuzz::classfile::ClassFile::builder(&format!("deep/C{i}")).super_class(sup);
    if with_ping {
        builder = builder.method(
            MethodAccess::PUBLIC | MethodAccess::STATIC,
            "ping",
            "()V",
            CodeAttribute {
                max_stack: 1,
                max_locals: 1,
                instructions: vec![Instruction::Simple(Opcode::Return)],
                exception_table: Vec::new(),
                attributes: Vec::new(),
            },
        );
    }
    builder.build().to_bytes()
}

/// `main` invoking `deep/C0.ping()` statically, with a `depth`-class
/// chain `C0 -> C1 -> ... -> C{depth-1} -> Object` on the classpath and
/// `ping` defined only on the chain root.
fn deep_chain_setup(depth: usize) -> (Vec<u8>, Vec<Vec<u8>>) {
    let main = build_main("deep/Main", 1, 1, |cp| {
        let ping = cp.method_ref("deep/C0", "ping", "()V");
        (
            vec![
                Instruction::Invoke(Opcode::Invokestatic, ping),
                Instruction::Simple(Opcode::Return),
            ],
            Vec::new(),
        )
    });
    let classpath: Vec<Vec<u8>> = (0..depth)
        .map(|i| {
            let sup = if i + 1 == depth {
                "java/lang/Object".to_string()
            } else {
                format!("deep/C{}", i + 1)
            };
            chain_class(i, &sup, i + 1 == depth)
        })
        .collect();
    (main, classpath)
}

#[test]
fn deep_inheritance_chain_raises_resolution_depth_exceeded() {
    // 40 hops needed, 32 allowed: every profile reports the dedicated
    // depth error instead of silently claiming the method doesn't exist.
    let (main, classpath) = deep_chain_setup(40);
    for spec in VmSpec::all_five() {
        let name = spec.name.clone();
        let result = Jvm::new(spec).run_with_options(&main, &classpath, false);
        match &result.outcome {
            Outcome::Rejected { phase, error } => {
                assert_eq!(*phase, Phase::Runtime, "phase on {name}");
                assert_eq!(
                    error.kind,
                    JvmErrorKind::ResolutionDepthExceeded,
                    "kind on {name}: {error:?}"
                );
            }
            other => panic!("expected depth rejection on {name}, got {other:?}"),
        }
    }

    // Control: the same shape within the hop budget resolves and runs.
    let (main, classpath) = deep_chain_setup(8);
    for spec in VmSpec::all_five() {
        let name = spec.name.clone();
        let result = Jvm::new(spec).run_with_options(&main, &classpath, false);
        assert_eq!(
            result.outcome.phase(),
            Phase::Invoked,
            "short chain on {name}: {:?}",
            result.outcome
        );
    }
}
