//! "Fuzz the fuzzer": adversarial classfile bytes must never panic the
//! pipeline. Random blobs, truncated prefixes of valid classfiles, and
//! bit-flipped valid classfiles all go through structural decoding and a
//! full five-profile startup; every profile must come back with a clean
//! verdict — in particular *not* a contained-crash verdict, which would
//! mean a panic fired inside our own VM (see DESIGN.md, "Fault
//! containment").

use classfuzz::classfile::ClassFile;
use classfuzz::core::seeds::SeedCorpus;
use classfuzz::vm::{preparse, Jvm, VmSpec};
use proptest::prelude::*;

/// Drives `bytes` through the whole front half of the pipeline: structural
/// decode (must return a `Result`, never unwind) and startup on all five
/// VM profiles (containment turns an internal panic into a crash verdict,
/// which this test treats as a bug: malformed input must be *rejected*,
/// not crash the VM).
///
/// Doubles as the parse-once equivalence oracle: on every profile, running
/// the raw bytes and running the shared [`preparse`] result must produce
/// the identical outcome — and, for the traced reference profile, the
/// identical coverage trace — over well-formed, truncated, and corrupted
/// inputs alike.
fn pipeline_survives(bytes: &[u8]) -> Result<(), String> {
    let _ = ClassFile::from_bytes(bytes);
    let parsed = preparse(bytes);
    for spec in VmSpec::all_five() {
        let name = spec.name.clone();
        let jvm = Jvm::new(spec);
        let from_bytes = jvm.run(bytes);
        let from_parsed = jvm.run_parsed(&parsed);
        prop_assert!(
            !from_bytes.outcome.is_crash(),
            "profile {name} crashed on {}-byte input: {}",
            bytes.len(),
            from_bytes.outcome
        );
        prop_assert_eq!(
            &from_bytes,
            &from_parsed,
            "profile {} diverged between the bytes path and the parsed path",
            &name
        );
    }
    // The reference profile also collects coverage: the trace must be
    // identical between the two paths, or campaign determinism breaks.
    let reference = Jvm::new(VmSpec::hotspot9());
    prop_assert_eq!(
        reference.run_traced(bytes),
        reference.run_traced_parsed(&parsed),
        "reference trace diverged between the bytes path and the parsed path"
    );
    Ok(())
}

/// A small corpus of valid classfiles to truncate and corrupt.
fn valid_corpus() -> Vec<Vec<u8>> {
    SeedCorpus::generate(4, 0xF12E).to_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn random_blobs_never_crash_the_pipeline(
        bytes in proptest::collection::vec(any::<u8>(), 0..400),
    ) {
        pipeline_survives(&bytes)?;
    }

    #[test]
    fn truncated_classfiles_never_crash_the_pipeline(
        pick in 0usize..4,
        permille in 0usize..1000,
    ) {
        let corpus = valid_corpus();
        let bytes = &corpus[pick];
        let keep = bytes.len() * permille / 1000;
        pipeline_survives(&bytes[..keep])?;
    }

    #[test]
    fn bit_flipped_classfiles_never_crash_the_pipeline(
        pick in 0usize..4,
        flips in proptest::collection::vec((any::<usize>(), 0u8..8), 1..6),
    ) {
        let corpus = valid_corpus();
        let mut bytes = corpus[pick].clone();
        let len = bytes.len();
        for (pos, bit) in flips {
            bytes[pos % len] ^= 1 << bit;
        }
        pipeline_survives(&bytes)?;
    }
}
