//! Differential-testing regression suite: a small fixed corpus of
//! discrepancy-prone classfiles run across the five VM policy presets
//! (Table 3), with the accept/reject matrix pinned as a snapshot.
//!
//! Each row is one corpus entry; each column one VM profile, in Table 3
//! order (HotSpot 7, HotSpot 8, HotSpot 9, J9, GIJ); each digit the phase
//! code where that VM stopped (0 = invoked normally, 1 = loading,
//! 2 = linking, 3 = initializing, 4 = runtime). If a policy change in
//! `classfuzz_vm` moves any digit, this test names the corpus entry and
//! the VM column that moved.

use classfuzz::classfile::{ClassAccess, FieldAccess, MethodAccess};
use classfuzz::core::diff::DifferentialHarness;
use classfuzz::jimple::{
    lower::lower_class, BinOp, Body, Expr, IrClass, IrField, IrMethod, JType, Stmt, Target, Value,
};

/// The fixed corpus: deterministic constructions covering the paper's four
/// problem classes plus ordinary accept/reject behavior.
fn corpus() -> Vec<(&'static str, Vec<u8>)> {
    let mut entries: Vec<(&'static str, IrClass)> = Vec::new();

    // Baseline: a plain hello-world class every VM invokes.
    entries.push(("hello", IrClass::with_hello_main("m/Hello", "Completed!")));

    // Problem 1: abstract <clinit> without code (Figure 2).
    let mut clinit = IrClass::with_hello_main("m/Clinit", "Completed!");
    clinit.methods.push(IrMethod::abstract_method(
        MethodAccess::PUBLIC | MethodAccess::ABSTRACT,
        "<clinit>",
        vec![],
        None,
    ));
    entries.push(("abstract-clinit", clinit));

    // Problem 2: a broken helper that is never invoked — eager verifiers
    // reject at linking, lazy J9 invokes normally.
    let mut lazy = IrClass::with_hello_main("m/Lazy", "Completed!");
    let mut body = Body::new();
    body.declare("x", JType::string());
    body.stmts.push(Stmt::Assign {
        target: Target::Local("x".into()),
        value: Expr::Use(Value::int(1)),
    });
    body.stmts.push(Stmt::Assign {
        target: Target::Local("y".into()),
        value: Expr::Use(Value::local("x")),
    });
    body.declare("y", JType::string());
    body.stmts.push(Stmt::Return(None));
    lazy.methods.push(IrMethod {
        access: MethodAccess::PUBLIC | MethodAccess::STATIC,
        name: "brokenHelper".into(),
        params: vec![],
        ret: None,
        exceptions: vec![],
        body: Some(body),
    });
    entries.push(("lazy-verification", lazy));

    // Problem 3: a throws clause naming an internal class.
    let mut throws = IrClass::with_hello_main("m/Throws", "Completed!");
    throws.methods[0]
        .exceptions
        .push("sun/internal/PiscesKit$2".into());
    entries.push(("internal-throws", throws));

    // Problem 4a: an interface with a static main.
    let mut iface_main = IrClass::with_hello_main("m/IfaceMain", "Completed!");
    iface_main.access = ClassAccess::PUBLIC | ClassAccess::INTERFACE | ClassAccess::ABSTRACT;
    entries.push(("interface-main", iface_main));

    // Problem 4b: an interface whose super class is not Object.
    let mut bad_super = IrClass::new("m/BadSuper");
    bad_super.access = ClassAccess::PUBLIC | ClassAccess::INTERFACE | ClassAccess::ABSTRACT;
    bad_super.super_class = Some("java/lang/Exception".into());
    entries.push(("interface-bad-super", bad_super));

    // Problem 4c: duplicate fields.
    let mut dup = IrClass::with_hello_main("m/Dup", "Completed!");
    for _ in 0..2 {
        dup.fields.push(IrField {
            access: FieldAccess::PUBLIC,
            name: "twin".into(),
            ty: JType::Int,
            constant_value: None,
        });
    }
    entries.push(("duplicate-fields", dup));

    // A uniform runtime rejection: 1/0 in main.
    let mut div = IrClass::new("m/Div");
    let mut body = Body::new();
    body.declare("x", JType::Int);
    body.stmts.push(Stmt::Assign {
        target: Target::Local("x".into()),
        value: Expr::BinOp(BinOp::Div, JType::Int, Value::int(1), Value::int(0)),
    });
    body.stmts.push(Stmt::Return(None));
    div.methods.push(IrMethod {
        access: MethodAccess::PUBLIC | MethodAccess::STATIC,
        name: "main".into(),
        params: vec![JType::array(JType::string())],
        ret: None,
        exceptions: vec![],
        body: Some(body),
    });
    entries.push(("div-by-zero", div));

    // A uniform runtime rejection of a different kind: no main at all.
    entries.push(("no-main", IrClass::new("m/NoMain")));

    let mut corpus: Vec<(&'static str, Vec<u8>)> = entries
        .into_iter()
        .map(|(label, class)| (label, lower_class(&class).to_bytes()))
        .collect();
    // A malformed classfile rejected before any structure exists.
    corpus.push(("truncated-bytes", vec![0xCA, 0xFE, 0xBA]));
    corpus
}

/// The pinned matrix: `(corpus label, per-VM phase digits)`.
const SNAPSHOT: &[(&str, &str)] = &[
    ("hello", "00000"),
    ("abstract-clinit", "00010"),
    ("lazy-verification", "22202"),
    ("internal-throws", "00200"),
    ("interface-main", "11110"),
    ("interface-bad-super", "11114"),
    ("duplicate-fields", "11110"),
    ("div-by-zero", "44444"),
    ("no-main", "44444"),
    ("truncated-bytes", "11111"),
];

#[test]
fn discrepancy_matrix_matches_snapshot() {
    let harness = DifferentialHarness::paper_five();
    let corpus = corpus();
    assert_eq!(
        corpus.len(),
        SNAPSHOT.len(),
        "corpus and snapshot row counts differ"
    );
    for ((label, bytes), (snap_label, snap_key)) in corpus.iter().zip(SNAPSHOT) {
        assert_eq!(label, snap_label, "corpus order drifted from the snapshot");
        let vector = harness.run(bytes);
        assert_eq!(
            &vector.key(),
            snap_key,
            "{label}: phase matrix row changed (columns: HS7 HS8 HS9 J9 GIJ)"
        );
    }
}

#[test]
fn matrix_discrepancy_classification() {
    let harness = DifferentialHarness::paper_five();
    let by_label: std::collections::BTreeMap<&str, String> = corpus()
        .iter()
        .map(|(label, bytes)| (*label, harness.run(bytes).key()))
        .collect();

    // The baseline and the uniform rejections are NOT discrepancies.
    for uniform in ["hello", "div-by-zero", "no-main", "truncated-bytes"] {
        let key = &by_label[uniform];
        let first = key.as_bytes()[0];
        assert!(
            key.bytes().all(|d| d == first),
            "{uniform} should be uniform across VMs, got {key}"
        );
    }
    // Every problem construction IS a discrepancy.
    for problem in [
        "abstract-clinit",
        "lazy-verification",
        "internal-throws",
        "interface-main",
        "interface-bad-super",
        "duplicate-fields",
    ] {
        let key = &by_label[problem];
        let first = key.as_bytes()[0];
        assert!(
            key.bytes().any(|d| d != first),
            "{problem} should trigger a discrepancy, got {key}"
        );
    }
}

#[test]
fn distinct_discrepancy_count_is_pinned() {
    // The paper counts discrepancies by distinct encoded key. Our fixed
    // corpus yields exactly these distinct discrepancy keys.
    let harness = DifferentialHarness::paper_five();
    let mut keys: Vec<String> = corpus()
        .iter()
        .map(|(_, bytes)| harness.run(bytes))
        .filter(|v| v.is_discrepancy())
        .map(|v| v.key())
        .collect();
    keys.sort();
    keys.dedup();
    assert_eq!(keys, vec!["00010", "00200", "11110", "11114", "22202"]);
}
