//! The free-running async engine's contract (see DESIGN.md §14):
//!
//! * a one-shard async run replays the sequential campaign bit for bit
//!   (same RNG stream, same pool at every pick, same acceptance sequence);
//! * multi-shard runs are nondeterministic in *order* but sound in
//!   *acceptance* (no duplicate traces enter the suite) and equivalent in
//!   *findings* (the fixed-budget discrepancy key set matches lockstep's);
//! * a shard dying outside containment ends the campaign with a
//!   structured `EngineError` without wedging its free-running peers.

use std::collections::BTreeSet;

use classfuzz::core::diff::DifferentialHarness;
use classfuzz::core::engine::{
    run_campaign, run_campaign_parallel, Algorithm, CampaignConfig, CampaignResult, Schedule,
};
use classfuzz::core::seeds::SeedCorpus;
use classfuzz::coverage::{GlobalCoverage, UniquenessCriterion};
use classfuzz::jimple::lower::lower_class;
use classfuzz::vm::{Jvm, VmSpec};

fn small_seeds() -> Vec<classfuzz::jimple::IrClass> {
    SeedCorpus::generate(10, 93).into_classes()
}

/// The union reference-VM coverage of a campaign's accepted suite.
fn suite_coverage(result: &CampaignResult) -> GlobalCoverage {
    let reference = Jvm::new(VmSpec::hotspot9());
    let mut global = GlobalCoverage::new();
    for bytes in result.test_bytes() {
        let trace = reference
            .run_traced(&bytes)
            .trace
            .expect("accepted classes have reference traces");
        global.absorb(&trace);
    }
    global
}

/// The set of startup-phase discrepancy keys a campaign's suite triggers.
fn discrepancy_keys(result: &CampaignResult) -> BTreeSet<String> {
    let harness = DifferentialHarness::paper_five();
    result
        .test_bytes()
        .iter()
        .map(|bytes| harness.run(bytes))
        .filter(|vector| vector.is_discrepancy())
        .map(|vector| vector.key())
        .collect()
}

#[test]
fn one_shard_async_replays_sequential_for_every_algorithm() {
    let seeds = small_seeds();
    for algorithm in Algorithm::table4_lineup() {
        let config = CampaignConfig::new(algorithm, 60, 17).with_schedule(Schedule::Async);
        let sequential = run_campaign(&seeds, &config);
        let parallel = run_campaign_parallel(&seeds, &config, 1).expect("engine error");

        assert_eq!(
            sequential.test_classes, parallel.test_classes,
            "{algorithm}: accepted indices diverge"
        );
        assert_eq!(
            sequential
                .gen_classes
                .iter()
                .map(|g| (&g.bytes, g.mutator_id, g.accepted))
                .collect::<Vec<_>>(),
            parallel
                .gen_classes
                .iter()
                .map(|g| (&g.bytes, g.mutator_id, g.accepted))
                .collect::<Vec<_>>(),
            "{algorithm}: generated streams diverge"
        );
        assert_eq!(
            sequential.mutator_stats, parallel.mutator_stats,
            "{algorithm}"
        );
        assert_eq!(sequential.crashes, parallel.crashes, "{algorithm}");
        // The ISSUE's floor is superset-of-or-equal coverage; bit-identical
        // replay gives exact equality.
        assert_eq!(
            suite_coverage(&sequential).stats(),
            suite_coverage(&parallel).stats(),
            "{algorithm}: accepted-suite coverage diverges"
        );
    }
}

#[test]
fn one_shard_async_replays_sequential_with_seed_intelligence_on() {
    // The §14 replay contract must survive the seed-intelligence layer
    // (DESIGN.md §15): with max-cover selection reordering the initial
    // pool and distillation evicting at iteration boundaries, a one-shard
    // async run still replays the sequential campaign bit for bit —
    // selection happens before the loop, and both engines distill the
    // identical pool at the identical boundaries.
    use classfuzz::core::engine::SeedSelect;
    let seeds = small_seeds();
    for algorithm in Algorithm::table4_lineup() {
        let config = CampaignConfig::new(algorithm, 90, 17)
            .with_schedule(Schedule::Async)
            .with_seed_select(SeedSelect::MaxCover)
            .with_pool_cap(4);
        let sequential = run_campaign(&seeds, &config);
        let parallel = run_campaign_parallel(&seeds, &config, 1).expect("engine error");

        assert_eq!(
            sequential.test_classes, parallel.test_classes,
            "{algorithm}: accepted indices diverge under maxcover + distill"
        );
        assert_eq!(
            sequential
                .gen_classes
                .iter()
                .map(|g| (&g.bytes, g.mutator_id, g.accepted))
                .collect::<Vec<_>>(),
            parallel
                .gen_classes
                .iter()
                .map(|g| (&g.bytes, g.mutator_id, g.accepted))
                .collect::<Vec<_>>(),
            "{algorithm}: generated streams diverge under maxcover + distill"
        );
        assert_eq!(
            sequential.acceptance.distill_passes, parallel.acceptance.distill_passes,
            "{algorithm}: distillation pass counts diverge"
        );
        assert_eq!(
            sequential.acceptance.distill_evicted, parallel.acceptance.distill_evicted,
            "{algorithm}: distillation eviction counts diverge"
        );
    }
}

#[test]
fn async_discrepancy_key_set_matches_lockstep_at_fixed_budget() {
    // The fixed-budget cross-check, run where discrepancy-set equality is
    // well-defined: at one shard both schedules are deterministic (each
    // replays the sequential campaign), so the async engine must surface
    // *exactly* the lockstep engine's discrepancy keys from the same
    // pinned corpus and budget. At two or more shards the accepted set is
    // interleaving-dependent and the key sets only overlap — that weaker
    // property is asserted separately below. See DESIGN.md §14.
    let seeds = SeedCorpus::generate(12, 21).into_classes();
    let config = CampaignConfig::new(Algorithm::Classfuzz(UniquenessCriterion::StBr), 600, 21);
    let lockstep = run_campaign_parallel(&seeds, &config, 1).expect("lockstep engine error");
    let async_run =
        run_campaign_parallel(&seeds, &config.clone().with_schedule(Schedule::Async), 1)
            .expect("async engine error");
    let lockstep_keys = discrepancy_keys(&lockstep);
    let async_keys = discrepancy_keys(&async_run);
    assert!(
        !lockstep_keys.is_empty(),
        "the pinned corpus must trigger discrepancies"
    );
    assert_eq!(
        lockstep_keys, async_keys,
        "async and lockstep must find the same discrepancy key set"
    );
}

#[test]
fn multi_shard_async_finds_overlapping_discrepancy_keys() {
    // At three free-running shards the candidate stream depends on thread
    // interleaving, so exact key-set equality is not a defined property;
    // what must hold is that the async engine keeps *finding* the corpus's
    // discrepancies — a non-empty key set sharing its core with lockstep's.
    let seeds = SeedCorpus::generate(12, 21).into_classes();
    let config = CampaignConfig::new(Algorithm::Classfuzz(UniquenessCriterion::StBr), 600, 21);
    let lockstep = run_campaign_parallel(&seeds, &config, 3).expect("lockstep engine error");
    let async_run =
        run_campaign_parallel(&seeds, &config.clone().with_schedule(Schedule::Async), 3)
            .expect("async engine error");
    let lockstep_keys = discrepancy_keys(&lockstep);
    let async_keys = discrepancy_keys(&async_run);
    assert!(!async_keys.is_empty(), "async found no discrepancies");
    assert!(
        lockstep_keys.intersection(&async_keys).next().is_some(),
        "async ({async_keys:?}) and lockstep ({lockstep_keys:?}) share no keys"
    );
}

#[test]
fn async_multi_shard_acceptance_rejects_duplicate_statistics() {
    // Soundness under concurrency: the double-checked write-lock insert
    // must never let two shards both accept equal [stbr] statistics.
    let seeds = small_seeds();
    let config = CampaignConfig::new(Algorithm::Classfuzz(UniquenessCriterion::StBr), 150, 5)
        .with_schedule(Schedule::Async);
    let result = run_campaign_parallel(&seeds, &config, 4).expect("engine error");
    assert!(!result.test_classes.is_empty(), "campaign accepted nothing");

    let reference = Jvm::new(VmSpec::hotspot9());
    let mut seen = BTreeSet::new();
    for seed in &seeds {
        let bytes = lower_class(seed).to_bytes();
        if let Some(trace) = reference.run_traced(&bytes).trace {
            seen.insert((trace.stats().stmt, trace.stats().br));
        }
    }
    for bytes in result.test_bytes() {
        let trace = reference
            .run_traced(&bytes)
            .trace
            .expect("accepted classes have reference traces");
        let key = (trace.stats().stmt, trace.stats().br);
        assert!(
            seen.insert(key),
            "accepted mutant duplicates the [stbr] statistic {key:?}"
        );
    }
    // Every iteration of the shared budget was claimed by somebody.
    let iterations: usize = result.shard_stats.iter().map(|s| s.iterations).sum();
    assert_eq!(iterations, 150);
    let accepted: usize = result.shard_stats.iter().map(|s| s.accepted).sum();
    assert_eq!(accepted, result.test_classes.len());
}

#[test]
fn async_shard_death_surfaces_structured_engine_error() {
    let seeds = small_seeds();
    let config = CampaignConfig::new(Algorithm::Classfuzz(UniquenessCriterion::StBr), 400, 7)
        .with_schedule(Schedule::Async)
        .with_shard_death_injection(1);
    let err = run_campaign_parallel(&seeds, &config, 3)
        .expect_err("an injected shard death must fail the campaign");
    assert_eq!(err.shard_id, Some(1), "the dead shard must be named");
    assert!(
        err.message.contains("died outside containment"),
        "message: {}",
        err.message
    );
    assert!(
        err.message.contains("injected shard death"),
        "the panic detail must ride along: {}",
        err.message
    );
    // The surviving shards wound down through the stop flag rather than
    // wedging — reaching this line at all is the real assertion, but the
    // injection fired before shard 1 consumed any budget, so its peers
    // can never have spent the whole 400.
}

#[test]
fn async_degenerate_campaigns_return_empty_results() {
    let config = CampaignConfig::new(Algorithm::Randfuzz, 50, 1).with_schedule(Schedule::Async);
    let empty = run_campaign_parallel(&[], &config, 4).expect("engine error");
    assert!(empty.gen_classes.is_empty());
    assert!(empty.test_classes.is_empty());
    let none = run_campaign_parallel(
        &small_seeds(),
        &CampaignConfig::new(Algorithm::Randfuzz, 0, 1).with_schedule(Schedule::Async),
        4,
    )
    .expect("engine error");
    assert!(none.gen_classes.is_empty());
}
