//! Integration tests for the paper's §3.3 case studies (Problems 1–4),
//! exercised end-to-end: IR → classfile bytes → five JVM profiles.

use classfuzz::classfile::{ClassAccess, FieldAccess, MethodAccess};
use classfuzz::core::diff::DifferentialHarness;
use classfuzz::jimple::builder::default_constructor;
use classfuzz::jimple::{lower::lower_class, IrClass, IrField, IrMethod, JType};
use classfuzz::vm::{JvmErrorKind, Phase};

fn harness() -> DifferentialHarness {
    DifferentialHarness::paper_five()
}

fn phases_of(class: &IrClass) -> Vec<u8> {
    harness().run(&lower_class(class).to_bytes()).encoded()
}

/// Problem 1: "other methods named `<clinit>` are of no consequence".
/// HotSpot invokes the class normally; J9 reports the format error quoted
/// in Figure 2's caption.
#[test]
fn problem1_clinit_of_no_consequence() {
    let mut class = IrClass::with_hello_main("M1436188543", "Completed!");
    class.methods.push(IrMethod::abstract_method(
        MethodAccess::PUBLIC | MethodAccess::ABSTRACT,
        "<clinit>",
        vec![],
        None,
    ));
    let harness = harness();
    let vector = harness.run(&lower_class(&class).to_bytes());
    let enc = vector.encoded();
    assert_eq!(
        &enc[0..3],
        &[0, 0, 0],
        "all three HotSpot releases invoke normally"
    );
    assert_eq!(enc[3], 1, "J9 rejects at loading");
    let j9_error = vector.outcomes()[3].error().expect("J9 rejected");
    assert_eq!(j9_error.kind, JvmErrorKind::ClassFormatError);
    assert!(
        j9_error.message.contains("no Code attribute") && j9_error.message.contains("<clinit>"),
        "J9's message should match the paper's: {}",
        j9_error.message
    );
}

/// Problem 2, part 1: J9 verifies methods lazily — a broken method that is
/// never invoked passes on J9 but fails eager verifiers.
#[test]
fn problem2_lazy_verification() {
    use classfuzz::jimple::{Body, Expr, Stmt, Target, Value};
    let mut class = IrClass::with_hello_main("p/LazyVerify", "Completed!");
    let mut body = Body::new();
    body.declare("s", JType::string());
    body.stmts.push(Stmt::Assign {
        target: Target::Local("s".into()),
        value: Expr::Use(Value::int(7)), // int stored into a String slot
    });
    body.stmts.push(Stmt::Assign {
        target: Target::Local("t".into()),
        value: Expr::Use(Value::local("s")),
    });
    body.declare("t", JType::string());
    body.stmts.push(Stmt::Return(None));
    class.methods.push(IrMethod {
        access: MethodAccess::PUBLIC | MethodAccess::STATIC,
        name: "neverCalled".into(),
        params: vec![],
        ret: None,
        exceptions: vec![],
        body: Some(body),
    });
    let enc = phases_of(&class);
    assert_eq!(enc[1], 2, "HotSpot 8 verifies eagerly: linking rejection");
    assert_eq!(enc[3], 0, "J9 never verifies the uncalled method: invoked");
    assert_eq!(enc[4], 2, "GIJ verifies eagerly too");
}

/// Problem 2, part 2: GIJ rejects provably unsafe reference-argument
/// passing that HotSpot's verifier assumes assignable (M1433982529).
#[test]
fn problem2_unsafe_param_cast() {
    use classfuzz::jimple::{Body, Expr, InvokeExpr, InvokeKind, Stmt, Target, Value};
    let mut class = IrClass::with_hello_main("M1433982529", "Completed!");
    let mut body = Body::new();
    body.declare("r0", JType::string());
    body.stmts.push(Stmt::Assign {
        target: Target::Local("r0".into()),
        value: Expr::Use(Value::str("oops")),
    });
    body.stmts.push(Stmt::Invoke(InvokeExpr {
        kind: InvokeKind::Static,
        class: "unloaded/Helper".into(),
        name: "getBoolean".into(),
        params: vec![JType::object("java/util/Map")],
        ret: Some(JType::Boolean),
        receiver: None,
        args: vec![Value::local("r0")],
    }));
    body.stmts.push(Stmt::Return(None));
    class.methods.push(IrMethod {
        access: MethodAccess::PROTECTED | MethodAccess::STATIC,
        name: "internalTransform".into(),
        params: vec![],
        ret: None,
        exceptions: vec![],
        body: Some(body),
    });
    let enc = phases_of(&class);
    assert_eq!(enc[2], 0, "HotSpot does not report any error for this");
    assert_eq!(enc[4], 2, "GIJ throws a verification error");
}

/// Problem 3: a `throws` clause naming an internal class — HotSpot (Java 9
/// encapsulation) reports IllegalAccessError; J9 and GIJ do not resolve
/// throws clauses at all.
#[test]
fn problem3_internal_class_in_throws() {
    let mut class = IrClass::with_hello_main("M1437121261", "Completed!");
    class.methods[0]
        .exceptions
        .push("sun/internal/PiscesKit$2".into());
    let harness = harness();
    let vector = harness.run(&lower_class(&class).to_bytes());
    let enc = vector.encoded();
    assert_eq!(enc[2], 2, "HotSpot 9 rejects at linking");
    assert_eq!(
        vector.outcomes()[2].error().unwrap().kind,
        JvmErrorKind::IllegalAccessError
    );
    assert_eq!(enc[3], 0, "J9 does not resolve throws clauses");
    assert_eq!(enc[4], 0, "GIJ does not resolve throws clauses");
}

/// Problem 4: interface extending a class — ClassFormatError on HotSpot/J9,
/// accepted by GIJ.
#[test]
fn problem4_interface_extending_exception() {
    let mut class = IrClass::new("p/BadIface");
    class.access = ClassAccess::PUBLIC | ClassAccess::INTERFACE | ClassAccess::ABSTRACT;
    class.super_class = Some("java/lang/Exception".into());
    let enc = phases_of(&class);
    assert_eq!(enc[1], 1, "HotSpot: ClassFormatError at loading");
    assert_eq!(enc[3], 1, "J9: ClassFormatError at loading");
    assert_ne!(enc[4], 1, "GIJ fails to catch the illegal inheritance");
}

/// Problem 4: GIJ can execute an interface having a main method; the
/// others cannot.
#[test]
fn problem4_interface_with_main() {
    let mut class = IrClass::with_hello_main("p/IfaceMain", "Completed!");
    class.access = ClassAccess::PUBLIC | ClassAccess::INTERFACE | ClassAccess::ABSTRACT;
    let enc = phases_of(&class);
    assert_eq!(enc[4], 0, "GIJ executes the interface main");
    for (i, phase) in enc.iter().enumerate().take(4) {
        assert_ne!(*phase, 0, "VM column {i} must not invoke an interface main");
    }
}

/// Problem 4: `public abstract void <init>(int,int,int,boolean)` is
/// rejected by all JVMs except GIJ.
#[test]
fn problem4_abstract_init() {
    let mut class = IrClass::with_hello_main("p/AbsInit", "Completed!");
    class.methods.push(IrMethod::abstract_method(
        MethodAccess::PUBLIC | MethodAccess::ABSTRACT,
        "<init>",
        vec![JType::Int, JType::Int, JType::Int, JType::Boolean],
        None,
    ));
    // Make the class abstract so only the <init> signature policy differs.
    class.access = ClassAccess::PUBLIC | ClassAccess::ABSTRACT | ClassAccess::SUPER;
    let enc = phases_of(&class);
    for (i, phase) in enc.iter().enumerate().take(4) {
        assert_eq!(*phase, 1, "VM column {i} must reject the abstract <init>");
    }
    assert_eq!(enc[4], 0, "GIJ allows it");
}

/// Problem 4: duplicate fields — GIJ accepts, the rest reject.
#[test]
fn problem4_duplicate_fields() {
    let mut class = IrClass::with_hello_main("p/Dup", "Completed!");
    for _ in 0..2 {
        class.fields.push(IrField {
            access: FieldAccess::PUBLIC,
            name: "twin".into(),
            ty: JType::Int,
            constant_value: None,
        });
    }
    let enc = phases_of(&class);
    for (i, phase) in enc.iter().enumerate().take(4) {
        assert_eq!(*phase, 1, "VM column {i} must reject duplicate fields");
    }
    assert_eq!(enc[4], 0, "GIJ accepts a class with duplicate fields");
}

/// The EnumEditor case from §1: a superclass that is final only in newer
/// JRE generations splits the JVMs along library lines, and HotSpot labels
/// the failure VerifyError while J9 uses IncompatibleClassChangeError.
#[test]
fn enum_editor_environment_case() {
    let mut class = IrClass::with_hello_main("p/EditorSub", "Completed!");
    class.super_class = Some("jre/beans/AbstractEditor".into());
    class
        .methods
        .insert(0, default_constructor("jre/beans/AbstractEditor"));
    let harness = harness();
    let vector = harness.run(&lower_class(&class).to_bytes());
    let enc = vector.encoded();
    assert_eq!(enc[0], 0, "JRE 7: superclass is open, class runs");
    assert_eq!(enc[1], 2, "JRE 8: superclass now final");
    assert_eq!(enc[2], 2, "JRE 9: superclass still final");
    assert_eq!(
        vector.outcomes()[1].error().unwrap().kind,
        JvmErrorKind::VerifyError,
        "HotSpot reports VerifyError for a final superclass"
    );
    assert_eq!(
        vector.outcomes()[3].error().unwrap().kind,
        JvmErrorKind::IncompatibleClassChangeError,
        "J9 reports IncompatibleClassChangeError"
    );
    assert_eq!(enc[4], 0, "GIJ's JRE 5 library has the open superclass");
    assert_eq!(vector.outcomes()[0].phase(), Phase::Invoked);
}
