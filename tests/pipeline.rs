//! Whole-pipeline integration tests: seed generation → fuzzing campaigns →
//! differential testing → reduction, asserting the *shapes* of the paper's
//! Findings 1–4 at laptop scale.

use classfuzz::core::analyze::evaluate_suite;
use classfuzz::core::diff::DifferentialHarness;
use classfuzz::core::engine::{run_campaign, Algorithm, CampaignConfig};
use classfuzz::core::report::mutator_series;
use classfuzz::core::seeds::SeedCorpus;
use classfuzz::coverage::UniquenessCriterion;
use classfuzz::jimple::lower::lower_class;
use classfuzz::mutation::registry;
use classfuzz::reduce::reduce;

const SEEDS: usize = 25;
const ITERS: usize = 300;
const RNG: u64 = 20160613;

fn campaign(alg: Algorithm, iterations: usize) -> classfuzz::core::engine::CampaignResult {
    let seeds = SeedCorpus::generate(SEEDS, RNG).into_classes();
    run_campaign(&seeds, &CampaignConfig::new(alg, iterations, RNG))
}

/// Finding 1 (shape): randfuzz generates many times more classfiles than
/// any coverage-directed algorithm; the directed algorithms filter hard.
#[test]
fn finding1_generation_shape() {
    let stbr = campaign(Algorithm::Classfuzz(UniquenessCriterion::StBr), ITERS);
    let greedy = campaign(Algorithm::Greedyfuzz, ITERS);
    let rand = campaign(Algorithm::Randfuzz, ITERS * 10);

    assert!(
        rand.gen_classes.len() > 5 * stbr.gen_classes.len(),
        "randfuzz ({}) should dwarf classfuzz ({})",
        rand.gen_classes.len(),
        stbr.gen_classes.len()
    );
    assert_eq!(
        rand.test_classes.len(),
        rand.gen_classes.len(),
        "randfuzz accepts everything"
    );
    assert!(
        stbr.test_classes.len() > greedy.test_classes.len(),
        "greedyfuzz accepts the fewest representatives ({} vs {})",
        greedy.test_classes.len(),
        stbr.test_classes.len()
    );
    // [st] is one-dimensional and accepts fewer than [stbr].
    let st = campaign(Algorithm::Classfuzz(UniquenessCriterion::St), ITERS);
    assert!(
        st.test_classes.len() < stbr.test_classes.len(),
        "[st] ({}) must accept fewer than [stbr] ({})",
        st.test_classes.len(),
        stbr.test_classes.len()
    );
}

/// Finding 2 (shape): the MCMC chain's selection frequency correlates with
/// mutator success rate — high-succ mutators are drawn more often than
/// low-succ ones (Figure 4a/4b).
#[test]
fn finding2_mcmc_exploits_success_rates() {
    let stbr = campaign(Algorithm::Classfuzz(UniquenessCriterion::StBr), 600);
    let mutators = registry::all_mutators();
    let series = mutator_series(&stbr.mutator_stats, &mutators);
    let selected: Vec<_> = series.iter().filter(|p| p.selected > 0).collect();
    assert!(
        selected.len() > 20,
        "the campaign should exercise many mutators"
    );
    let top_freq: f64 = selected.iter().take(10).map(|p| p.frequency).sum::<f64>() / 10.0;
    let bottom_freq: f64 = selected
        .iter()
        .rev()
        .take(10)
        .map(|p| p.frequency)
        .sum::<f64>()
        / 10.0;
    assert!(
        top_freq > bottom_freq,
        "top-succ mutators should be selected more often ({top_freq:.4} vs {bottom_freq:.4})"
    );
}

/// Finding 3 (shape): the TestClasses diff rate rises far above the seed
/// corpus baseline (paper: 1.7% → 11.9%).
#[test]
fn finding3_diff_rate_amplification() {
    let harness = DifferentialHarness::paper_five();
    let seeds = SeedCorpus::generate(100, RNG);
    let baseline = evaluate_suite(&harness, &seeds.to_bytes());

    let stbr = campaign(Algorithm::Classfuzz(UniquenessCriterion::StBr), 500);
    let eval = evaluate_suite(&harness, &stbr.test_bytes());

    assert!(
        eval.diff_rate() > 2.0 * baseline.diff_rate(),
        "TestClasses diff ({:.1}%) must clearly exceed the seed baseline ({:.1}%)",
        eval.diff_rate() * 100.0,
        baseline.diff_rate() * 100.0
    );
    assert!(eval.discrepancies > 0);
}

/// Finding 4 (shape): classfuzz[stbr]'s TestClasses reveal multiple
/// distinct discrepancy categories, and per-class they are far denser in
/// distinct discrepancies than randfuzz's unfiltered output.
#[test]
fn finding4_distinct_discrepancies() {
    let harness = DifferentialHarness::paper_five();
    let stbr = campaign(Algorithm::Classfuzz(UniquenessCriterion::StBr), 500);
    let stbr_eval = evaluate_suite(&harness, &stbr.test_bytes());
    assert!(
        stbr_eval.distinct_count() >= 3,
        "classfuzz[stbr] should reveal several distinct discrepancies, got {}",
        stbr_eval.distinct_count()
    );

    let rand = campaign(Algorithm::Randfuzz, 500);
    let rand_eval = evaluate_suite(&harness, &rand.test_bytes());
    let stbr_density = stbr_eval.distinct_count() as f64 / stbr_eval.total.max(1) as f64;
    let rand_density = rand_eval.distinct_count() as f64 / rand_eval.total.max(1) as f64;
    assert!(
        stbr_density > rand_density,
        "distinct discrepancies per test class: classfuzz {stbr_density:.3} \
         must beat randfuzz {rand_density:.3}"
    );
}

/// End-to-end reduction: find a discrepancy trigger and shrink it while the
/// encoded outcome vector stays identical (§2.3's two-step loop).
#[test]
fn reduction_preserves_the_discrepancy() {
    let harness = DifferentialHarness::paper_five();
    let stbr = campaign(Algorithm::Classfuzz(UniquenessCriterion::StBr), 400);
    let trigger = stbr
        .test_classes
        .iter()
        .map(|&i| &stbr.gen_classes[i])
        .find(|g| harness.run(&g.bytes).is_discrepancy())
        .expect("a 400-iteration campaign should find at least one discrepancy");
    let original = harness.run(&trigger.bytes);
    let (reduced, stats) = reduce(&trigger.class, |candidate| {
        harness.run(&lower_class(candidate).to_bytes()) == original
    });
    assert_eq!(
        harness.run(&lower_class(&reduced).to_bytes()),
        original,
        "reduction must preserve the encoded outcome"
    );
    let before = trigger.class.methods.len() + trigger.class.fields.len();
    let after = reduced.methods.len() + reduced.fields.len();
    assert!(after <= before, "reduction never grows the class");
    assert!(stats.attempts > 0);
}

/// Campaigns are bit-deterministic across runs for a fixed seed.
#[test]
fn campaigns_replay_identically() {
    let a = campaign(Algorithm::Classfuzz(UniquenessCriterion::Tr), 150);
    let b = campaign(Algorithm::Classfuzz(UniquenessCriterion::Tr), 150);
    assert_eq!(a.test_classes, b.test_classes);
    let bytes_a: Vec<_> = a.gen_classes.iter().map(|g| &g.bytes).collect();
    let bytes_b: Vec<_> = b.gen_classes.iter().map(|g| &g.bytes).collect();
    assert_eq!(bytes_a, bytes_b);
}
