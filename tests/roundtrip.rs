//! Property-based tests on the classfile codec, the IR lowerer, and the
//! VM's robustness: arbitrary structures round-trip; arbitrary *bytes*
//! never panic any JVM profile.

use classfuzz::classfile::{ClassFile, FieldType, MethodDescriptor};
use classfuzz::core::seeds::SeedCorpus;
use classfuzz::jimple::lower::lower_class;
use classfuzz::vm::{Jvm, VmSpec};
use proptest::prelude::*;

fn field_type_strategy() -> impl Strategy<Value = FieldType> {
    let leaf = prop_oneof![
        Just(FieldType::Byte),
        Just(FieldType::Char),
        Just(FieldType::Double),
        Just(FieldType::Float),
        Just(FieldType::Int),
        Just(FieldType::Long),
        Just(FieldType::Short),
        Just(FieldType::Boolean),
        "[a-zA-Z][a-zA-Z0-9_/$]{0,20}".prop_map(FieldType::Object),
    ];
    leaf.prop_recursive(3, 8, 2, |inner| {
        inner.prop_map(|t| FieldType::Array(Box::new(t)))
    })
}

proptest! {
    /// Field descriptors round-trip: render → parse → identical.
    #[test]
    fn field_descriptor_roundtrip(ft in field_type_strategy()) {
        let text = ft.to_descriptor();
        let parsed = FieldType::parse(&text).expect("rendered descriptor parses");
        prop_assert_eq!(parsed, ft);
    }

    /// Method descriptors round-trip.
    #[test]
    fn method_descriptor_roundtrip(
        params in proptest::collection::vec(field_type_strategy(), 0..6),
        ret in proptest::option::of(field_type_strategy()),
    ) {
        let d = MethodDescriptor::new(params, ret);
        let text = d.to_descriptor();
        let parsed = MethodDescriptor::parse(&text).expect("rendered descriptor parses");
        prop_assert_eq!(parsed, d);
    }

    /// Parsing arbitrary bytes never panics — it errors or yields a
    /// classfile whose re-serialization parses again.
    #[test]
    fn classfile_parser_total(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        if let Ok(cf) = ClassFile::from_bytes(&bytes) {
            let out = cf.to_bytes();
            let again = ClassFile::from_bytes(&out).expect("re-serialized bytes parse");
            prop_assert_eq!(again.to_bytes(), out, "serialization is a fixpoint");
        }
    }

    /// Arbitrary bytes never panic *any* of the five JVM profiles; every
    /// run terminates in one of the five phases.
    #[test]
    fn vm_startup_is_total_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        for spec in VmSpec::all_five() {
            let result = Jvm::new(spec).run(&bytes);
            prop_assert!(result.outcome.phase().code() <= 4);
        }
    }

    /// Garbage classfiles that *start* valid (magic + version) still never
    /// panic the reference JVM's traced mode.
    #[test]
    fn traced_reference_vm_total(tail in proptest::collection::vec(any::<u8>(), 0..200)) {
        let mut bytes = vec![0xCA, 0xFE, 0xBA, 0xBE, 0x00, 0x00, 0x00, 0x33];
        bytes.extend(tail);
        let jvm = Jvm::new(VmSpec::hotspot9());
        let result = jvm.run_traced(&bytes);
        prop_assert!(result.trace.is_some());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every seed corpus lowers, serializes, re-parses, and re-serializes
    /// to identical bytes, for arbitrary generator seeds.
    #[test]
    fn seed_corpus_bytes_are_stable(seed in any::<u64>()) {
        let corpus = SeedCorpus::generate(6, seed);
        for class in corpus.classes() {
            let bytes = lower_class(class).to_bytes();
            let parsed = ClassFile::from_bytes(&bytes).expect("seed classfiles parse");
            prop_assert_eq!(parsed.to_bytes(), bytes);
        }
    }

    /// Every seed classfile terminates on every profile (no panics, no
    /// hangs) for arbitrary generator seeds.
    #[test]
    fn seeds_terminate_everywhere(seed in any::<u64>()) {
        let corpus = SeedCorpus::generate(4, seed);
        for bytes in corpus.to_bytes() {
            for spec in VmSpec::all_five() {
                let _ = Jvm::new(spec).run(&bytes);
            }
        }
    }
}
