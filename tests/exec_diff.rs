//! Execution-phase differential testing: property tests that
//! semantics-preserving body mutators never produce an execution
//! discrepancy, regression pins that execution diffing changes nothing
//! when disabled, and a fixed-seed campaign that deterministically finds a
//! divergence the startup-only matrix cannot see.

use classfuzz::core::diff::{DifferentialHarness, ExecDiscrepancy};
use classfuzz::core::engine::{run_campaign, run_campaign_parallel, Algorithm, CampaignConfig};
use classfuzz::core::seeds::SeedCorpus;
use classfuzz::coverage::UniquenessCriterion;
use classfuzz::jimple::{lower::lower_class, IrClass};
use classfuzz::mutation::{registry, MutationCtx, MutationError, Mutator};
use rand::SeedableRng;

fn apply_seeded(
    class: &mut IrClass,
    mutator: &Mutator,
    rng_seed: u64,
) -> Result<(), MutationError> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(rng_seed);
    let donors = vec![];
    let mut ctx = MutationCtx::new(&mut rng, &donors);
    mutator.apply(class, &mut ctx)
}

fn apply_named(
    class: &mut IrClass,
    name_fragment: &str,
    rng_seed: u64,
) -> Result<(), MutationError> {
    let all = registry::exec_mutators(0);
    let m = all
        .iter()
        .find(|m| m.name.contains(name_fragment))
        .unwrap_or_else(|| panic!("no exec mutator named *{name_fragment}*"));
    apply_seeded(class, m, rng_seed)
}

/// The acceptance-criterion mechanism: a static read off `sun/misc/Unsafe`
/// traps as `IllegalAccessError` under Java 9 encapsulation and as
/// `NoSuchFieldError` everywhere else — all at startup digit 4, so the
/// startup matrix sees a uniform "44444" while the execution verdicts
/// diverge.
#[test]
fn internal_static_read_is_invisible_to_startup_matrix() {
    let mut class = IrClass::with_hello_main("x/Probe", "Completed!");
    apply_named(&mut class, "internal class", 7).unwrap();
    let harness = DifferentialHarness::paper_five();
    let v = harness.run(&lower_class(&class).to_bytes());
    assert!(
        !v.is_discrepancy(),
        "startup key should be uniform: {}",
        v.key()
    );
    assert!(
        v.is_exec_discrepancy(),
        "exec key should diverge: {}",
        v.exec_key()
    );
    assert_eq!(v.classify_exec(), Some(ExecDiscrepancy::DivergentTrap));
    let key = v.exec_key();
    let tokens: Vec<&str> = key.split('|').collect();
    assert_eq!(tokens[2], "trap:IllegalAccessError", "{key}");
    assert_eq!(tokens[0], "trap:NoSuchFieldError", "{key}");
}

/// The preserving subset's contract: commuting commutative operands and
/// duplicating (shadowed) catch clauses must leave every profile's
/// execution verdict — and the startup key — bit-identical, over a whole
/// seed corpus and many mutation sites.
#[test]
fn preserving_mutators_never_change_execution_verdicts() {
    let harness = DifferentialHarness::paper_five();
    let corpus = SeedCorpus::generate(16, 11);
    let preserving = registry::exec_preserving_mutators(0);
    let mut applications = 0usize;
    for class in corpus.classes() {
        let baseline = harness.run(&lower_class(class).to_bytes());
        for mutator in &preserving {
            for rng_seed in 0..6u64 {
                let mut mutant = class.clone();
                match apply_seeded(&mut mutant, mutator, rng_seed) {
                    Err(MutationError::NotApplicable { .. }) => continue,
                    Ok(()) => {}
                }
                applications += 1;
                let v = harness.run(&lower_class(&mutant).to_bytes());
                assert_eq!(
                    v.key(),
                    baseline.key(),
                    "{}: startup key changed on {}",
                    mutator.name,
                    class.name
                );
                assert_eq!(
                    v.exec_key(),
                    baseline.exec_key(),
                    "{}: execution verdict changed on {}",
                    mutator.name,
                    class.name
                );
            }
        }
    }
    // The property must not pass vacuously.
    assert!(
        applications >= 30,
        "too few preserving-mutator applications: {applications}"
    );
}

// The PR 5 fixed-seed snapshot (see tests/coverage_equiv.rs): with
// execution diffing *disabled*, the campaign must stay bit-identical —
// same RNG stream, same acceptance decisions, and no execution runs.
const SNAP_SEEDS: usize = 12;
const SNAP_SEED_RNG: u64 = 21;
const SNAP_ITERATIONS: usize = 150;
const SNAP_CAMPAIGN_RNG: u64 = 20160613;

#[test]
fn exec_diff_off_preserves_the_startup_snapshot() {
    let seeds = SeedCorpus::generate(SNAP_SEEDS, SNAP_SEED_RNG).into_classes();
    let cfg = CampaignConfig::new(
        Algorithm::Classfuzz(UniquenessCriterion::StBr),
        SNAP_ITERATIONS,
        SNAP_CAMPAIGN_RNG,
    );
    assert!(!cfg.exec_diff, "execution diffing must default to off");
    let result = run_campaign(&seeds, &cfg);
    assert_eq!(
        (result.gen_classes.len(), result.test_classes.len()),
        (135, 30),
        "exec-diff-off campaign diverged from the PR 5 snapshot"
    );
    assert!(result.exec_reports.is_empty());
    assert_eq!(result.acceptance.exec_runs, 0);
    assert_eq!(result.acceptance.exec_discrepancies, 0);
}

// A fixed-seed campaign that deterministically finds execution-phase
// divergences. Uniform mutator selection (uniquefuzz) reaches the exec
// mutators far sooner than the MCMC chain, whose proposals take long to
// walk past the 129 startup mutators.
const EXEC_ITERATIONS: usize = 400;
const EXEC_CAMPAIGN_RNG: u64 = 2;

fn exec_campaign_config() -> CampaignConfig {
    CampaignConfig::new(Algorithm::Uniquefuzz, EXEC_ITERATIONS, EXEC_CAMPAIGN_RNG).with_exec_diff()
}

#[test]
fn fixed_seed_campaign_finds_pure_execution_discrepancies() {
    let seeds = SeedCorpus::generate(SNAP_SEEDS, SNAP_SEED_RNG).into_classes();
    let result = run_campaign(&seeds, &exec_campaign_config());
    // Every accepted test class was executed on all five profiles.
    assert_eq!(result.exec_reports.len(), result.test_classes.len());
    assert_eq!(
        result.acceptance.exec_runs,
        result.exec_reports.len() as u64
    );

    let pure: Vec<_> = result
        .exec_reports
        .iter()
        .filter(|r| r.is_exec_discrepancy())
        .collect();
    assert_eq!(
        pure.len(),
        4,
        "fixed-seed campaign must find its pinned divergences"
    );
    assert_eq!(result.acceptance.exec_discrepancies, 4);
    for report in &pure {
        // Each one is invisible to the startup matrix: a uniform startup
        // key (no '.'-separated digit differs) with divergent traps.
        assert_eq!(report.taxonomy, Some(ExecDiscrepancy::DivergentTrap));
        let digits: Vec<&str> = report.startup_key.split('.').collect();
        assert!(
            digits.windows(2).all(|w| w[0] == w[1]),
            "startup key not uniform: {}",
            report.startup_key
        );
        let tokens: Vec<&str> = report.exec_key.split('|').collect();
        assert!(
            tokens.iter().any(|t| *t != tokens[0]),
            "exec key not divergent: {}",
            report.exec_key
        );
    }
}

// The PR 9 snapshot: the prepare-once interpreter must leave the
// exec-diff campaign bit-identical — same accepted classes, same RNG
// stream, same divergence keys. Any probe added to or removed from the
// execution path shifts acceptance decisions and breaks these counts.
#[test]
fn exec_diff_campaign_snapshot_is_pinned() {
    let seeds = SeedCorpus::generate(SNAP_SEEDS, SNAP_SEED_RNG).into_classes();
    let result = run_campaign(&seeds, &exec_campaign_config());
    assert_eq!(
        (result.gen_classes.len(), result.test_classes.len()),
        (326, 73),
        "exec-diff campaign diverged from the PR 9 snapshot"
    );
    let mut keys: Vec<&str> = result
        .exec_reports
        .iter()
        .filter(|r| r.is_exec_discrepancy())
        .map(|r| r.exec_key.as_str())
        .collect();
    keys.sort_unstable();
    assert_eq!(keys.len(), 4, "pinned divergence count");
}

#[test]
fn one_shard_parallel_campaign_matches_sequential_exec_reports() {
    let seeds = SeedCorpus::generate(SNAP_SEEDS, SNAP_SEED_RNG).into_classes();
    let cfg = exec_campaign_config();
    let seq = run_campaign(&seeds, &cfg);
    let par = run_campaign_parallel(&seeds, &cfg, 1).expect("1-shard campaign runs");
    assert_eq!(seq.test_classes, par.test_classes);
    assert_eq!(seq.exec_reports, par.exec_reports);
    assert_eq!(
        seq.acceptance.exec_discrepancies,
        par.acceptance.exec_discrepancies
    );
}
