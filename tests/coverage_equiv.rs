//! Equivalence suite for the bitset coverage engine: the dense
//! representation in `classfuzz_coverage` must agree, verdict for verdict,
//! with the retained `BTreeSet` reference model
//! (`classfuzz_coverage::baseline`) — and the campaign engines built on
//! top of it must reproduce the pre-rewrite fixed-seed behavior exactly.

use std::collections::BTreeSet;

use classfuzz_core::diff::DifferentialHarness;
use classfuzz_core::engine::{run_campaign, run_campaign_parallel, Algorithm, CampaignConfig};
use classfuzz_core::seeds::SeedCorpus;
use classfuzz_coverage::{baseline, GlobalCoverage, SuiteIndex, TraceFile, UniquenessCriterion};
use proptest::prelude::*;

/// An abstract trace: the site sets both representations are built from.
#[derive(Debug, Clone)]
struct AbstractTrace {
    stmts: BTreeSet<u32>,
    branches: BTreeSet<(u32, bool)>,
}

impl AbstractTrace {
    fn bitset(&self) -> TraceFile {
        let mut t = TraceFile::new();
        for &s in &self.stmts {
            t.hit_stmt(s);
        }
        for &(s, d) in &self.branches {
            t.hit_branch(s, d);
        }
        t
    }

    fn reference(&self) -> baseline::TraceFile {
        let mut t = baseline::TraceFile::new();
        for &s in &self.stmts {
            t.hit_stmt(s);
        }
        for &(s, d) in &self.branches {
            t.hit_branch(s, d);
        }
        t
    }
}

fn abstract_trace() -> impl Strategy<Value = AbstractTrace> {
    (
        proptest::collection::btree_set(0u32..60, 0..20),
        proptest::collection::btree_set((0u32..25, any::<bool>()), 0..15),
    )
        .prop_map(|(stmts, branches)| AbstractTrace { stmts, branches })
}

const CRITERIA: [UniquenessCriterion; 3] = [
    UniquenessCriterion::St,
    UniquenessCriterion::StBr,
    UniquenessCriterion::Tr,
];

proptest! {
    /// stats, merge, and statically_equal agree between the two
    /// representations on arbitrary trace pairs.
    #[test]
    fn trace_algebra_agrees(a in abstract_trace(), b in abstract_trace()) {
        let (ba, bb) = (a.bitset(), b.bitset());
        let (ra, rb) = (a.reference(), b.reference());
        prop_assert_eq!(ba.stats(), ra.stats());
        prop_assert_eq!(bb.stats(), rb.stats());
        prop_assert_eq!(
            ba.statically_equal(&bb),
            ra.statically_equal(&rb),
            "statically_equal diverged"
        );
        let (bm, rm) = (ba.merge(&bb), ra.merge(&rb));
        prop_assert_eq!(bm.stats(), rm.stats(), "merge stats diverged");
        // The merged trace must relate to its inputs identically too.
        prop_assert_eq!(bm.statically_equal(&ba), rm.statically_equal(&ra));
        // Site sets survive the bitset round trip.
        prop_assert_eq!(ba.stmt_sites(), a.stmts);
        prop_assert_eq!(ba.branch_sites(), a.branches);
    }

    /// Equal traces fingerprint equally (the property the [tr] fast path
    /// is sound under): whenever the reference model calls two traces
    /// statically equal, the bitset fingerprints must match.
    #[test]
    fn fingerprint_is_sound_for_tr(a in abstract_trace(), b in abstract_trace()) {
        let (ba, bb) = (a.bitset(), b.bitset());
        if a.reference().statically_equal(&b.reference()) {
            prop_assert_eq!(ba.fingerprint(), bb.fingerprint());
        }
        // And a fingerprint mismatch must imply inequality.
        if ba.fingerprint() != bb.fingerprint() {
            prop_assert!(!ba.statically_equal(&bb));
        }
    }

    /// SuiteIndex verdicts (is_unique + insert_if_unique) agree with the
    /// reference model on arbitrary offer histories, per criterion.
    #[test]
    fn suite_index_verdicts_agree(
        history in proptest::collection::vec(abstract_trace(), 0..25),
    ) {
        for criterion in CRITERIA {
            let mut bit = SuiteIndex::new(criterion);
            let mut rf = baseline::SuiteIndex::new(criterion);
            for (i, t) in history.iter().enumerate() {
                let (bt, rt) = (t.bitset(), t.reference());
                prop_assert_eq!(
                    bit.is_unique(&bt),
                    rf.is_unique(&rt),
                    "{}: is_unique diverged at offer {}",
                    criterion,
                    i
                );
                prop_assert_eq!(
                    bit.insert_if_unique(&bt),
                    rf.insert_if_unique(&rt),
                    "{}: insert verdict diverged at offer {}",
                    criterion,
                    i
                );
                prop_assert_eq!(bit.len(), rf.len());
            }
        }
    }

    /// GlobalCoverage growth verdicts and totals agree with the reference
    /// model on arbitrary absorb histories.
    #[test]
    fn global_coverage_agrees(
        history in proptest::collection::vec(abstract_trace(), 0..20),
    ) {
        let mut bit = GlobalCoverage::new();
        let mut rf = baseline::GlobalCoverage::new();
        for (i, t) in history.iter().enumerate() {
            prop_assert_eq!(
                bit.absorb(&t.bitset()),
                rf.absorb(&t.reference()),
                "absorb verdict diverged at {}",
                i
            );
            prop_assert_eq!(bit.stats(), rf.stats());
        }
    }
}

// --- Fixed-seed campaign snapshot -------------------------------------------
//
// These constants were captured from the engine *before* the bitset
// rewrite (BTreeSet traces, no fingerprints, per-iteration allocation).
// The rewrite must not change a single acceptance decision: same seeds,
// same budget, same RNG seed ⇒ same generated/accepted counts in both
// engines and the same discrepancy vector against the five-VM harness.

const SNAP_SEEDS: usize = 12;
const SNAP_SEED_RNG: u64 = 21;
const SNAP_ITERATIONS: usize = 150;
const SNAP_CAMPAIGN_RNG: u64 = 20160613;

/// `(generated, accepted)` counts of one campaign configuration.
type Counts = (usize, usize);

/// (algorithm, sequential counts, 3-shard counts)
fn snapshot_table() -> Vec<(Algorithm, Counts, Counts)> {
    vec![
        (
            Algorithm::Classfuzz(UniquenessCriterion::StBr),
            (135, 30),
            (131, 30),
        ),
        (
            Algorithm::Classfuzz(UniquenessCriterion::St),
            (139, 12),
            (129, 10),
        ),
        (
            Algorithm::Classfuzz(UniquenessCriterion::Tr),
            (138, 32),
            (129, 30),
        ),
        (Algorithm::Greedyfuzz, (125, 21), (127, 24)),
    ]
}

#[test]
fn campaign_snapshot_is_unchanged_by_the_bitset_engine() {
    let seeds = SeedCorpus::generate(SNAP_SEEDS, SNAP_SEED_RNG).into_classes();
    for (alg, (seq_gen, seq_acc), (par_gen, par_acc)) in snapshot_table() {
        let cfg = CampaignConfig::new(alg, SNAP_ITERATIONS, SNAP_CAMPAIGN_RNG);
        let seq = run_campaign(&seeds, &cfg);
        assert_eq!(
            (seq.gen_classes.len(), seq.test_classes.len()),
            (seq_gen, seq_acc),
            "{alg}: sequential campaign diverged from the pre-rewrite snapshot"
        );
        let par = run_campaign_parallel(&seeds, &cfg, 3).expect("parallel campaign must run");
        assert_eq!(
            (par.gen_classes.len(), par.test_classes.len()),
            (par_gen, par_acc),
            "{alg}: 3-shard campaign diverged from the pre-rewrite snapshot"
        );
    }
}

#[test]
fn discrepancy_vector_is_unchanged_by_the_bitset_engine() {
    let seeds = SeedCorpus::generate(SNAP_SEEDS, SNAP_SEED_RNG).into_classes();
    let cfg = CampaignConfig::new(
        Algorithm::Classfuzz(UniquenessCriterion::StBr),
        SNAP_ITERATIONS,
        SNAP_CAMPAIGN_RNG,
    );
    let result = run_campaign(&seeds, &cfg);
    let harness = DifferentialHarness::paper_five();
    let discrepancies: Vec<usize> = result
        .test_bytes()
        .iter()
        .enumerate()
        .filter(|(_, bytes)| harness.run(bytes).is_discrepancy())
        .map(|(i, _)| i)
        .collect();
    assert_eq!(
        discrepancies,
        vec![0, 2, 6, 12, 13, 14, 23, 27],
        "classfuzz[stbr] TestClasses discrepancy vector diverged"
    );
}
