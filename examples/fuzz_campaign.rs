//! A complete coverage-directed fuzzing campaign (Algorithm 1), start to
//! finish: seeds → MCMC-guided mutation → coverage-unique acceptance →
//! differential testing → discrepancy report.
//!
//! ```sh
//! cargo run --release --example fuzz_campaign
//! ```

use classfuzz::core::analyze::evaluate_suite;
use classfuzz::core::diff::DifferentialHarness;
use classfuzz::core::engine::{run_campaign, Algorithm, CampaignConfig};
use classfuzz::core::report;
use classfuzz::core::seeds::SeedCorpus;
use classfuzz::coverage::UniquenessCriterion;
use classfuzz::mutation::registry;

fn main() {
    // The paper seeds from 1,216 JRE classfiles; we use a synthetic corpus.
    let seeds = SeedCorpus::generate(40, 2016).into_classes();
    println!("seed corpus: {} classes", seeds.len());

    // Run classfuzz[stbr] — MCMC mutator selection, [stbr] acceptance.
    let config = CampaignConfig::new(Algorithm::Classfuzz(UniquenessCriterion::StBr), 600, 13);
    let result = run_campaign(&seeds, &config);
    println!(
        "campaign: {} iterations -> {} generated, {} representative (succ {:.1}%)",
        result.iterations,
        result.gen_classes.len(),
        result.test_classes.len(),
        result.success_rate() * 100.0
    );

    // Which mutators carried the campaign? (Table 5.)
    let mutators = registry::all_mutators();
    println!("\n{}", report::format_table5(&result, &mutators));

    // Differentially test the representative classes on the five JVMs.
    let harness = DifferentialHarness::paper_five();
    let eval = evaluate_suite(&harness, &result.test_bytes());
    println!(
        "differential testing: {}/{} TestClasses trigger discrepancies \
         ({:.1}% diff, {} distinct categories)",
        eval.discrepancies,
        eval.total,
        eval.diff_rate() * 100.0,
        eval.distinct_count()
    );
    for (key, count) in &eval.distinct {
        println!("  encoded {key}: {count} classfiles");
    }
}
