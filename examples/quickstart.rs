//! Quickstart: build a classfile, run it on all five JVM profiles, and
//! trigger the paper's Figure 2 discrepancy.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use classfuzz::classfile::MethodAccess;
use classfuzz::core::diff::DifferentialHarness;
use classfuzz::jimple::{lower::lower_class, printer, IrClass, IrMethod};

fn main() {
    // 1. Author a class in the Jimple-like IR and lower it to real
    //    classfile bytes.
    let hello = IrClass::with_hello_main("demo/Hello", "Completed!");
    let bytes = lower_class(&hello).to_bytes();
    println!("demo/Hello is {} bytes of classfile:", bytes.len());
    println!("{}", printer::print_class(&hello));

    // 2. Run it on the five JVMs of the paper's Table 3.
    let harness = DifferentialHarness::paper_five();
    let vector = harness.run(&bytes);
    println!("encoded outcome sequence: {vector} (all zeros = everyone invoked it)\n");

    // 3. Recreate Figure 2: add `public abstract <clinit>` with no Code
    //    attribute. HotSpot treats it as "of no consequence"; J9 reports a
    //    ClassFormatError.
    let mut mutant = IrClass::with_hello_main("demo/M1436188543", "Completed!");
    mutant.methods.push(IrMethod::abstract_method(
        MethodAccess::PUBLIC | MethodAccess::ABSTRACT,
        "<clinit>",
        vec![],
        None,
    ));
    let vector = harness.run(&lower_class(&mutant).to_bytes());
    println!("Figure 2 mutant: encoded sequence {vector}");
    for (jvm, outcome) in harness.jvms().iter().zip(vector.outcomes()) {
        println!("  {:22} -> {outcome}", jvm.spec().name);
    }
    assert!(
        vector.is_discrepancy(),
        "the Figure 2 mutant must split the JVMs"
    );
    println!("\nJVM discrepancy reproduced — this is what classfuzz hunts for.");
}
