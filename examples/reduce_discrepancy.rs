//! Find a discrepancy-triggering mutant, then shrink it with hierarchical
//! delta debugging until no deletion preserves the discrepancy (§2.3).
//!
//! ```sh
//! cargo run --release --example reduce_discrepancy
//! ```

use classfuzz::core::diff::DifferentialHarness;
use classfuzz::core::engine::{run_campaign, Algorithm, CampaignConfig};
use classfuzz::core::seeds::SeedCorpus;
use classfuzz::coverage::UniquenessCriterion;
use classfuzz::jimple::{lift::lift_class, lower::lower_class, printer};
use classfuzz::reduce::reduce;

fn main() {
    let harness = DifferentialHarness::paper_five();
    let seeds = SeedCorpus::generate(30, 99).into_classes();
    let result = run_campaign(
        &seeds,
        &CampaignConfig::new(Algorithm::Classfuzz(UniquenessCriterion::StBr), 400, 5),
    );

    // Pick the first discrepancy-triggering test class.
    let Some(trigger) = result
        .test_classes
        .iter()
        .map(|&i| &result.gen_classes[i])
        .find(|g| harness.run(&g.bytes).is_discrepancy())
    else {
        println!("no discrepancy found at this small scale; rerun with more iterations");
        return;
    };
    let original_vector = harness.run(&trigger.bytes);
    println!(
        "found a discrepancy (encoded {original_vector}) in a {}-method, {}-field class",
        trigger.class.methods.len(),
        trigger.class.fields.len()
    );

    // The oracle of §2.3: re-lower, re-run, demand the same encoded output.
    let (reduced, stats) = reduce(&trigger.class, |candidate| {
        let bytes = lower_class(candidate).to_bytes();
        harness.run(&bytes) == original_vector
    });
    println!(
        "reduction: {} attempts, {} deletions kept, {} passes",
        stats.attempts, stats.kept_deletions, stats.passes
    );
    println!(
        "reduced to {} methods / {} fields; discrepancy still encodes {}",
        reduced.methods.len(),
        reduced.fields.len(),
        harness.run(&lower_class(&reduced).to_bytes())
    );
    println!(
        "\nreduced class (Jimple form):\n{}",
        printer::print_class(&reduced)
    );

    // Round-trip sanity: the reduced classfile still lifts back to IR.
    let cf = lower_class(&reduced);
    match lift_class(&cf) {
        Ok(_) => println!("(reduced classfile also lifts back through the decompiler)"),
        Err(e) => println!("(reduced classfile is too exotic to lift: {e})"),
    }
}
