//! Differential testing of the paper's four problem classes (§3.3) plus an
//! environment-induced discrepancy, with per-JVM outcome details.
//!
//! ```sh
//! cargo run --example differential_testing
//! ```

use classfuzz::classfile::{ClassAccess, FieldAccess, MethodAccess};
use classfuzz::core::diff::DifferentialHarness;
use classfuzz::jimple::builder::default_constructor;
use classfuzz::jimple::{lower::lower_class, IrClass, IrField, IrMethod, JType};

fn show(harness: &DifferentialHarness, title: &str, class: &IrClass) {
    let vector = harness.run(&lower_class(class).to_bytes());
    println!("-- {title} --");
    println!(
        "   encoded: {vector}{}",
        if vector.is_discrepancy() {
            "  [DISCREPANCY]"
        } else {
            ""
        }
    );
    for (jvm, outcome) in harness.jvms().iter().zip(vector.outcomes()) {
        println!("   {:22} {outcome}", jvm.spec().name);
    }
    println!();
}

fn main() {
    let harness = DifferentialHarness::paper_five();

    // Problem 1: public abstract <clinit> with no Code attribute.
    let mut p1 = IrClass::with_hello_main("M1436188543", "Completed!");
    p1.methods.push(IrMethod::abstract_method(
        MethodAccess::PUBLIC | MethodAccess::ABSTRACT,
        "<clinit>",
        vec![],
        None,
    ));
    show(&harness, "Problem 1: <clinit> of no consequence", &p1);

    // Problem 3: main declares `throws` of an internal (sun.*-style) class.
    let mut p3 = IrClass::with_hello_main("M1437121261", "Completed!");
    p3.methods[0]
        .exceptions
        .push("sun/internal/PiscesKit$2".into());
    show(
        &harness,
        "Problem 3: internal class in a throws clause",
        &p3,
    );

    // Problem 4a: an interface carrying a main method.
    let mut p4a = IrClass::with_hello_main("p/IfaceMain", "Completed!");
    p4a.access = ClassAccess::PUBLIC | ClassAccess::INTERFACE | ClassAccess::ABSTRACT;
    show(&harness, "Problem 4: interface with a main method", &p4a);

    // Problem 4b: duplicate fields.
    let mut p4b = IrClass::with_hello_main("p/DupFields", "Completed!");
    for _ in 0..2 {
        p4b.fields.push(IrField {
            access: FieldAccess::PUBLIC,
            name: "twin".into(),
            ty: JType::Int,
            constant_value: None,
        });
    }
    show(&harness, "Problem 4: duplicate fields", &p4b);

    // Environment: extending a class that became final in JRE 8 (the
    // EnumEditor case from the paper's introduction).
    let mut env = IrClass::with_hello_main("p/EditorSub", "Completed!");
    env.super_class = Some("jre/beans/AbstractEditor".into());
    env.methods
        .insert(0, default_constructor("jre/beans/AbstractEditor"));
    show(
        &harness,
        "Environment: superclass final only in JRE 8+",
        &env,
    );
}
