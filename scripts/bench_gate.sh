#!/usr/bin/env sh
# Coverage bench-smoke gate: runs the [tr] acceptance hot-path
# micro-benchmarks on a fixed seed (see crates/bench/src/covbench.rs),
# writes BENCH_coverage.json, and fails when
#
#   * any tracked metric regresses more than 20% against the committed
#     BENCH_coverage.baseline.json, or
#   * the bitset engine's [tr] is_unique speedup over the retained BTreeSet
#     reference model drops below 5x (machine-independent floor).
#
# Timings are medians over repeated runs so one scheduler hiccup cannot
# fail CI; the committed baseline is deliberately pessimistic (see its
# "_note"). Extra flags pass through to covbench (e.g. --repeats 3).
set -eu

cd "$(dirname "$0")/.."

cargo run --release -q -p classfuzz-bench --bin covbench -- \
    --out BENCH_coverage.json \
    --baseline BENCH_coverage.baseline.json \
    --max-regression 1.2 \
    --min-speedup 5.0 \
    "$@"
