#!/usr/bin/env sh
# Bench-smoke gate: runs the eight gated benchmark scenarios on fixed
# seeds and fails CI on regression. Extra flags pass through to covbench
# for every scenario (e.g. --repeats 3).
#
# Scenario `coverage` — the [tr] acceptance hot-path micro-benchmarks
# (crates/bench/src/covbench.rs) → BENCH_coverage.json. Fails when
#
#   * any tracked metric regresses more than 20% against the committed
#     BENCH_coverage.baseline.json, or
#   * the bitset engine's [tr] is_unique speedup over the retained BTreeSet
#     reference model drops below 5x (machine-independent floor).
#
# Scenario `harness` — the end-to-end five-VM evaluation of the
# snapshot-pinned mutant batch (crates/bench/src/harnessbench.rs)
# → BENCH_harness.json. Fails when
#
#   * the shared pipeline's throughput regresses more than 20% against
#     the committed BENCH_harness.baseline.json,
#   * the in-run speedup of the shared pipeline over the cold
#     (rebuild-everything) path drops below 2x, or
#   * throughput falls below 2x the committed old-path baseline — the
#     share-everything pipeline's acceptance criterion.
#
# Scenario `mutate` — the clone → mutate → lower → serialize hot loop on
# the pinned campaign workload (crates/bench/src/mutatebench.rs)
# → BENCH_mutate.json. Fails when
#
#   * the scratch path's throughput regresses more than 20% against the
#     committed BENCH_mutate.baseline.json,
#   * the in-run speedup of the copy-on-write + scratch-lowering path
#     over the deep-clone + cold-lowering path drops below 2x,
#   * throughput falls below 2x the committed cold-path baseline — the
#     allocation-lean generation acceptance criterion, or
#   * allocator events per candidate on the scratch path stop undercutting
#     the cold path, or exceed the committed count by more than 20%
#     (counted by the covbench binary's counting global allocator).
#
# Scenario `exec` — the --exec-diff observer's cost on top of a
# startup-only five-VM evaluation of the same pinned batch
# (crates/bench/src/execbench.rs) → BENCH_exec.json. Fails when
#
#   * the differencing path's throughput regresses more than 20% against
#     the committed BENCH_exec.baseline.json, or
#   * the in-run exec-vs-startup overhead ratio drops below 0.5 —
#     execution differencing may at most double the evaluation cost.
#
# Scenario `interp` — interpreter throughput with the prepare-once
# PreparedCode layer vs cold per-call preparation on a switch-heavy
# hand-assembled workload (crates/bench/src/interpbench.rs)
# → BENCH_interp.json. Fails when
#
#   * the prepared path's executions/sec regress more than 20% against
#     the committed BENCH_interp.baseline.json, or
#   * the in-run prepared-vs-cold speedup drops below 2x — the
#     prepare-once layer must at least halve execution cost.
#
# Scenario `scale` — the free-running async engine's shard scaling and
# the fixed-budget async-vs-lockstep discrepancy cross-check
# (crates/bench/src/scalebench.rs) → BENCH_scale.json. Fails when
#
#   * the one-shard async-vs-lockstep discrepancy cross-check finds
#     differing OutcomeVector key sets (unconditional),
#   * on 2+ cores, the async scaling ratio at 2+ shards drops below 1.5x
#     (machine-independent floor; on a single core — the CI container —
#     the gate instead requires one async shard within the regression
#     budget of one lockstep shard), or
#   * one-shard async throughput regresses more than 20% against the
#     committed BENCH_scale.baseline.json.
#
# Scenario `yield` — distinct discrepancy keys per fixed iteration
# budget, uniform seeding vs greedy max-cover selection + live corpus
# distillation (crates/bench/src/yieldbench.rs) → BENCH_yield.json.
# Fully deterministic (both arms replay bit for bit on any machine);
# fails when
#
#   * the maxcover+distill arm's distinct-key yield drops below 1.2x the
#     uniform arm's (machine-independent floor),
#   * the uniform arm finds no keys or the maxcover arm never distills
#     (degenerate measurements), or
#   * maxcover_keys falls more than 20% below the committed
#     BENCH_yield.baseline.json.
#
# Scenario `startup` — five-profile startup throughput of one preparsed
# candidate, with the analyze-once verification table shared across
# profiles vs cold per-profile analysis
# (crates/bench/src/startupbench.rs) → BENCH_startup.json. Fails when
#
#   * the shared path's startups/sec regress more than 20% against the
#     committed BENCH_startup.baseline.json, or
#   * the in-run shared-vs-cold speedup drops below 2x — sharing
#     profile-invariant analysis must at least halve five-profile
#     startup cost on the verification-heavy workload.
#
# Timings are medians over repeated runs so one scheduler hiccup cannot
# fail CI; the committed baselines are deliberately pessimistic (see
# their "_note" fields).
set -eu

cd "$(dirname "$0")/.."

cargo run --release -q -p classfuzz-bench --bin covbench -- \
    --out BENCH_coverage.json \
    --baseline BENCH_coverage.baseline.json \
    --max-regression 1.2 \
    --min-speedup 5.0 \
    "$@"

cargo run --release -q -p classfuzz-bench --bin covbench -- \
    --scenario harness \
    --out BENCH_harness.json \
    --baseline BENCH_harness.baseline.json \
    --max-regression 1.2 \
    --min-speedup 2.0 \
    "$@"

cargo run --release -q -p classfuzz-bench --bin covbench -- \
    --scenario mutate \
    --out BENCH_mutate.json \
    --baseline BENCH_mutate.baseline.json \
    --max-regression 1.2 \
    --min-speedup 2.0 \
    "$@"

cargo run --release -q -p classfuzz-bench --bin covbench -- \
    --scenario exec \
    --out BENCH_exec.json \
    --baseline BENCH_exec.baseline.json \
    --max-regression 1.2 \
    --min-speedup 0.5 \
    "$@"

cargo run --release -q -p classfuzz-bench --bin covbench -- \
    --scenario interp \
    --out BENCH_interp.json \
    --baseline BENCH_interp.baseline.json \
    --max-regression 1.2 \
    --min-speedup 2.0 \
    "$@"

cargo run --release -q -p classfuzz-bench --bin covbench -- \
    --scenario scale \
    --out BENCH_scale.json \
    --baseline BENCH_scale.baseline.json \
    --max-regression 1.2 \
    --min-speedup 1.5 \
    "$@"

cargo run --release -q -p classfuzz-bench --bin covbench -- \
    --scenario yield \
    --out BENCH_yield.json \
    --baseline BENCH_yield.baseline.json \
    --max-regression 1.2 \
    --min-speedup 1.2 \
    "$@"

cargo run --release -q -p classfuzz-bench --bin covbench -- \
    --scenario startup \
    --out BENCH_startup.json \
    --baseline BENCH_startup.baseline.json \
    --max-regression 1.2 \
    --min-speedup 2.0 \
    "$@"
