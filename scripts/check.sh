#!/usr/bin/env sh
# The full local gate: build, test, lint. Run from the repo root.
#
# The root manifest is both a package and the workspace root, so plain
# `cargo build`/`cargo test` would cover only the facade crate; every step
# here passes --workspace to reach all member crates and binaries.
set -eu

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
