#!/usr/bin/env sh
# The full local gate: build, test, lint. Run from the repo root.
#
# The root manifest is both a package and the workspace root, so plain
# `cargo build`/`cargo test` would cover only the facade crate; every step
# here passes --workspace to reach all member crates and binaries.
set -eu

cargo build --release --workspace
cargo test -q --workspace
# The adversarial-input suite on its own line so a containment regression
# is visible as such, not buried in the workspace run.
cargo test -q --test no_panic
cargo clippy --workspace --all-targets -- -D warnings
# No new panic sites in the hot-path crates (classfile/vm/core).
sh scripts/panic_gate.sh
