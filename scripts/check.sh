#!/usr/bin/env sh
# The full local gate — the single entrypoint .github/workflows/ci.yml
# mirrors (see README, "CI contract"). Run from anywhere; works fully
# offline against the vendored crates/{rand,proptest,criterion} shims.
#
# The root manifest is both a package and the workspace root, so plain
# `cargo build`/`cargo test` would cover only the facade crate; every step
# here passes --workspace to reach all member crates and binaries.
set -eu

cd "$(dirname "$0")/.."

# Formatting first: cheapest check, fails fastest.
cargo fmt --all --check
cargo build --release --workspace
cargo test -q --workspace
# The adversarial-input suite on its own line so a containment regression
# is visible as such, not buried in the workspace run.
cargo test -q --test no_panic
cargo clippy --workspace --all-targets -- -D warnings
# No new panic sites in the hot-path crates (classfile/vm/core).
sh scripts/panic_gate.sh
# Bench smoke, all five scenarios: the coverage hot-path microbenchmarks
# vs. BENCH_coverage.baseline.json (20% budget + 5x speedup floor), the
# end-to-end harness batch vs. BENCH_harness.baseline.json (20% budget +
# 2x shared-vs-cold and shared-vs-old-path floors), the mutate hot
# loop vs. BENCH_mutate.baseline.json (20% budget + 2x scratch-vs-cold
# floor + allocation-count ceiling), the --exec-diff observer vs.
# BENCH_exec.baseline.json (20% budget + 0.5 exec-vs-startup ratio
# floor), and the async engine's shard scaling + discrepancy cross-check
# vs. BENCH_scale.baseline.json (20% budget + 1.5x scaling floor where
# 2+ cores exist, a no-regression-vs-lockstep guard on one core, and an
# unconditional async-vs-lockstep key-set cross-check).
sh scripts/bench_gate.sh
