#!/usr/bin/env sh
# The full local gate — the single entrypoint .github/workflows/ci.yml
# mirrors (see README, "CI contract"). Run from anywhere; works fully
# offline against the vendored crates/{rand,proptest,criterion} shims.
#
# The root manifest is both a package and the workspace root, so plain
# `cargo build`/`cargo test` would cover only the facade crate; every step
# here passes --workspace to reach all member crates and binaries.
#
# Each step runs through `step NAME cmd...`, which times it and, on
# failure, names the broken gate before exiting — so a red CI log says
# "FAILED at step <name>" at the bottom instead of burying the culprit.
# A per-step timing summary prints on success.
set -u

cd "$(dirname "$0")/.."

TIMINGS=""

step() {
    step_name="$1"
    shift
    echo "==> ${step_name}: $*"
    step_start=$(date +%s)
    "$@"
    step_status=$?
    step_end=$(date +%s)
    if [ "${step_status}" -ne 0 ]; then
        echo "FAILED at step ${step_name} (exit ${step_status}, $((step_end - step_start))s)" >&2
        exit "${step_status}"
    fi
    TIMINGS="${TIMINGS}$(printf '  %-12s %4ss' "${step_name}" "$((step_end - step_start))")
"
}

# Formatting first: cheapest check, fails fastest.
step fmt cargo fmt --all --check
step build cargo build --release --workspace
step test cargo test -q --workspace
# The adversarial-input suite on its own line so a containment regression
# is visible as such, not buried in the workspace run.
step no_panic cargo test -q --test no_panic
step clippy cargo clippy --workspace --all-targets -- -D warnings
# No new panic sites in the hot-path crates (classfile/vm/core).
step panic_gate sh scripts/panic_gate.sh
# Bench smoke, all eight scenarios: the coverage hot-path microbenchmarks
# vs. BENCH_coverage.baseline.json (20% budget + 5x speedup floor), the
# end-to-end harness batch vs. BENCH_harness.baseline.json (20% budget +
# 2x shared-vs-cold and shared-vs-old-path floors), the mutate hot
# loop vs. BENCH_mutate.baseline.json (20% budget + 2x scratch-vs-cold
# floor + allocation-count ceiling), the --exec-diff observer vs.
# BENCH_exec.baseline.json (20% budget + 0.5 exec-vs-startup ratio
# floor), the prepare-once interpreter vs. BENCH_interp.baseline.json
# (20% budget + 2x prepared-vs-cold floor), the async engine's shard
# scaling + discrepancy cross-check
# vs. BENCH_scale.baseline.json (20% budget + 1.5x scaling floor where
# 2+ cores exist, a no-regression-vs-lockstep guard on one core, and an
# unconditional async-vs-lockstep key-set cross-check), and the
# deterministic seed-selection yield comparison vs.
# BENCH_yield.baseline.json (20% budget + 1.2x maxcover-vs-uniform
# distinct-discrepancy-key floor), and the analyze-once five-profile
# startup throughput vs. BENCH_startup.baseline.json (20% budget + 2x
# shared-vs-cold floor).
step bench_gate sh scripts/bench_gate.sh

echo "All gates passed. Step timings:"
printf '%s' "${TIMINGS}"
