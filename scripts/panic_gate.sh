#!/usr/bin/env sh
# Panic-hygiene gate for the hot paths of the pipeline: the crates that sit
# between a hostile classfile and a verdict must not add new `.unwrap()` /
# `.expect("...")` calls. A panic there either crashes a campaign worker or
# — worse — gets contained and miscounted as a VM crash verdict, so the
# policy is: return an error, degrade to a rejected outcome, or annotate.
#
# Scope:    crates/classfile, crates/vm, crates/core (src/ only).
# Exempt:   test code (everything at or below a `#[cfg(test)]` line — the
#           conventional tail position in this workspace), comment lines,
#           and lines carrying a `PANIC-OK` annotation, which documents a
#           checked invariant (e.g. "length verified two lines up").
#
# Exits nonzero listing every offending file:line.
set -eu

cd "$(dirname "$0")/.."

status=0
for file in $(find crates/classfile/src crates/vm/src crates/core/src -name '*.rs' | sort); do
    hits=$(awk '
        /#\[cfg\(test\)\]/ { exit }          # test module tail: out of scope
        /^[[:space:]]*\/\// { next }          # comment line
        /PANIC-OK/ { next }                   # documented invariant
        /\.unwrap\(\)|\.expect\("/ { printf "%s:%d: %s\n", FILENAME, FNR, $0 }
    ' "$file")
    if [ -n "$hits" ]; then
        echo "$hits"
        status=1
    fi
done

if [ "$status" -ne 0 ]; then
    echo ""
    echo "panic_gate: .unwrap()/.expect(\"...\") found in hot-path crates." >&2
    echo "Return an error instead, or annotate a checked invariant with PANIC-OK." >&2
fi
exit "$status"
